// Mostéfaoui-Raynal family sweeps: the majority variant solves uniform
// consensus with Omega when a majority is correct; the Sigma-quorum
// variant solves uniform consensus in ANY environment (paper §6.3 lead-in
// and footnote 5).
#include "algo/mr_consensus.hpp"

#include <gtest/gtest.h>

#include "consensus_test_util.hpp"

namespace nucon {
namespace {

using testutil::SweepParam;

constexpr Time kStabilize = 120;
constexpr std::int64_t kMaxSteps = 120'000;

class MrMajoritySweep : public testing::TestWithParam<SweepParam> {};

TEST_P(MrMajoritySweep, SolvesUniformConsensusWithMajority) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 20);
  ASSERT_TRUE(is_majority(fp.correct(), fp.n()));
  auto oracle = testutil::omega_only(fp, kStabilize, GetParam().seed);

  SchedulerOptions opts;
  opts.seed = GetParam().seed;
  opts.max_steps = kMaxSteps;
  const auto stats =
      run_consensus(fp, oracle.top(), make_mr_majority(GetParam().n),
                    testutil::mixed_proposals(GetParam().n), opts);

  EXPECT_TRUE(stats.all_correct_decided) << fp.to_string();
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

std::vector<SweepParam> majority_params() {
  std::vector<SweepParam> out;
  for (Pid n : {3, 4, 5, 7}) {
    for (Pid faults = 0; 2 * faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MrMajoritySweep,
                         testing::ValuesIn(majority_params()),
                         testutil::sweep_name);

class MrSigmaSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(MrSigmaSweep, SolvesUniformConsensusInAnyEnvironment) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 20);
  auto oracle = testutil::omega_sigma(fp, kStabilize, GetParam().seed);

  SchedulerOptions opts;
  opts.seed = GetParam().seed;
  opts.max_steps = kMaxSteps;
  const auto stats =
      run_consensus(fp, oracle.top(), make_mr_fd_quorum(GetParam().n),
                    testutil::mixed_proposals(GetParam().n), opts);

  EXPECT_TRUE(stats.all_correct_decided) << fp.to_string();
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

std::vector<SweepParam> sigma_params() {
  std::vector<SweepParam> out;
  for (Pid n : {2, 3, 4, 5, 6}) {
    for (Pid faults = 0; faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MrSigmaSweep, testing::ValuesIn(sigma_params()),
                         testutil::sweep_name);

TEST(MrSigma, MajorityStrategyOracleAlsoWorks) {
  FailurePattern fp(5);
  fp.set_crash(4, 60);
  auto oracle =
      testutil::omega_sigma(fp, 100, 42, SigmaStrategy::kMajority);
  SchedulerOptions opts;
  opts.seed = 42;
  opts.max_steps = 120'000;
  const auto stats = run_consensus(fp, oracle.top(), make_mr_fd_quorum(5),
                                   testutil::mixed_proposals(5), opts);
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

TEST(MrSigma, SurvivesCorrectMinority) {
  // Sigma (kernel strategy) exists even with 1 correct process out of 4;
  // MR-Sigma must still solve uniform consensus there. This is exactly
  // where MR-majority cannot terminate.
  FailurePattern fp(4);
  fp.set_crash(1, 30);
  fp.set_crash(2, 50);
  fp.set_crash(3, 70);
  auto oracle = testutil::omega_sigma(fp, 100, 5);
  SchedulerOptions opts;
  opts.seed = 5;
  opts.max_steps = 120'000;
  const auto stats = run_consensus(fp, oracle.top(), make_mr_fd_quorum(4),
                                   testutil::mixed_proposals(4), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

TEST(MrMajority, BlocksWithoutCorrectMajority) {
  // Liveness counterpart: with 2 of 4 correct, the majority variant cannot
  // gather majorities after the crashes and never terminates.
  FailurePattern fp(4);
  fp.set_crash(2, 10);
  fp.set_crash(3, 10);
  auto oracle = testutil::omega_only(fp, 50, 6);
  SchedulerOptions opts;
  opts.seed = 6;
  opts.max_steps = 40'000;
  const auto stats = run_consensus(fp, oracle.top(), make_mr_majority(4),
                                   testutil::mixed_proposals(4), opts);
  EXPECT_FALSE(stats.all_correct_decided);
  // Safety is never violated even while blocked.
  EXPECT_TRUE(stats.verdict.uniform_agreement);
}

TEST(MrConsensus, RoundsAdvance) {
  const FailurePattern fp(3);
  auto oracle = testutil::omega_only(fp, 0, 7);
  SchedulerOptions opts;
  opts.seed = 7;
  opts.max_steps = 60'000;
  const auto stats = run_consensus(fp, oracle.top(), make_mr_majority(3),
                                   {4, 4, 4}, opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_GE(stats.decide_round, 1);
  EXPECT_LE(stats.decide_round, stats.max_round);
}

TEST(MrConsensus, SnapshotChangesWithState) {
  MrConsensus a(0, 3, MrOptions{3, MrQuorumMode::kMajority});
  const auto before = a.snapshot();
  std::vector<Outgoing> out;
  a.step(nullptr, FdValue::of_leader(1), out);
  const auto after = a.snapshot();
  EXPECT_NE(before, after);  // round counter moved
  EXPECT_FALSE(out.empty()); // the LEAD broadcast went out
}

}  // namespace
}  // namespace nucon
