// run_consensus edge cases: step-cap exhaustion, malformed proposal
// vectors, and the shape of the decisions vector when processes crash
// before deciding.
#include "algo/harness.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

struct Fixture {
  explicit Fixture(Pid n, Time stabilize = 50, std::uint64_t seed = 7)
      : fp(n) {
    OmegaOptions oo;
    oo.stabilize_at = stabilize;
    oo.seed = seed;
    omega = std::make_unique<OmegaOracle>(fp, oo);
  }

  FailurePattern fp;
  std::unique_ptr<OmegaOracle> omega;
};

std::vector<Value> binary_proposals(Pid n) {
  std::vector<Value> out(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) out[static_cast<std::size_t>(p)] = p % 2;
  return out;
}

TEST(HarnessTest, StepCapExhaustionReportsTerminationFailure) {
  // A step budget far below what any decision needs: the run is cut off,
  // the verdict must say termination failed, and nothing may have decided.
  const Pid n = 5;
  Fixture fx(n, /*stabilize=*/1'000);
  SchedulerOptions opts;
  opts.seed = 3;
  opts.max_steps = 40;

  const ConsensusRunStats stats = run_consensus(
      fx.fp, *fx.omega, make_mr_majority(n), binary_proposals(n), opts);

  EXPECT_FALSE(stats.verdict.termination);
  EXPECT_FALSE(stats.verdict.solves_nonuniform());
  EXPECT_FALSE(stats.verdict.solves_uniform());
  EXPECT_FALSE(stats.all_correct_decided);
  EXPECT_LE(stats.steps, 40u);
  EXPECT_EQ(stats.decide_round, 0);
  ASSERT_EQ(stats.decisions.size(), static_cast<std::size_t>(n));
  for (const auto& d : stats.decisions) EXPECT_FALSE(d.has_value());
  // Vacuous agreement still holds: nobody decided, nobody disagreed.
  EXPECT_TRUE(stats.verdict.nonuniform_agreement);
}

TEST(HarnessTest, EmptyProposalVectorIsRejected) {
  const Pid n = 3;
  Fixture fx(n);
  SchedulerOptions opts;
  opts.seed = 1;

  EXPECT_THROW((void)run_consensus(fx.fp, *fx.omega, make_mr_majority(n),
                                   /*proposals=*/{}, opts),
               std::invalid_argument);
}

TEST(HarnessTest, WrongSizedProposalVectorIsRejected) {
  const Pid n = 4;
  Fixture fx(n);
  SchedulerOptions opts;
  opts.seed = 1;

  EXPECT_THROW((void)run_consensus(fx.fp, *fx.omega, make_mr_majority(n),
                                   binary_proposals(n - 1), opts),
               std::invalid_argument);
  EXPECT_THROW((void)run_consensus(fx.fp, *fx.omega, make_mr_majority(n),
                                   binary_proposals(n + 1), opts),
               std::invalid_argument);
}

TEST(HarnessTest, ProcessCrashingBeforeDecidingLeavesNulloptSlot) {
  // p2 dies at t=1, long before any decision: the decisions vector keeps
  // one slot per process (crashed included), with p2's empty, and the
  // survivors still solve consensus.
  const Pid n = 3;
  Fixture fx(n, /*stabilize=*/30);
  fx.fp.set_crash(2, 1);
  // Rebuild the oracle against the pattern that includes the crash.
  OmegaOptions oo;
  oo.stabilize_at = 30;
  oo.seed = 7;
  OmegaOracle omega(fx.fp, oo);

  SchedulerOptions opts;
  opts.seed = 11;
  opts.max_steps = 100'000;

  const ConsensusRunStats stats = run_consensus(
      fx.fp, omega, make_mr_majority(n), binary_proposals(n), opts);

  ASSERT_EQ(stats.decisions.size(), static_cast<std::size_t>(n));
  EXPECT_FALSE(stats.decisions[2].has_value());
  EXPECT_TRUE(stats.decisions[0].has_value());
  EXPECT_TRUE(stats.decisions[1].has_value());
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_uniform());
  EXPECT_GT(stats.decide_round, 0);
}

TEST(HarnessTest, AllProcessesCrashedYieldsAllEmptyDecisions) {
  // Everyone dies immediately: the scheduler stops once nobody can step,
  // decisions stay one-empty-slot-per-process, and with no correct process
  // the termination clause is vacuously satisfied.
  const Pid n = 3;
  FailurePattern fp(n);
  for (Pid p = 0; p < n; ++p) fp.set_crash(p, 1);
  OmegaOptions oo;
  oo.stabilize_at = 10;
  oo.seed = 5;
  OmegaOracle omega(fp, oo);

  SchedulerOptions opts;
  opts.seed = 2;
  opts.max_steps = 10'000;

  const ConsensusRunStats stats = run_consensus(
      fp, omega, make_mr_majority(n), binary_proposals(n), opts);

  ASSERT_EQ(stats.decisions.size(), static_cast<std::size_t>(n));
  for (const auto& d : stats.decisions) EXPECT_FALSE(d.has_value());
  EXPECT_LT(stats.steps, 10'000u);  // cut short by universal death, not the cap
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.termination);
}

}  // namespace
}  // namespace nucon
