// Capstone integration matrix: every consensus algorithm in the library,
// run under its own detector stack across environments, must satisfy its
// own solving predicate — and every recorded run must be structurally
// valid and deterministically replayable. This is the "everything
// composes" test tying the simulator, the oracles, the algorithms and the
// checkers together.
#include <gtest/gtest.h>

#include "algo/ct_consensus.hpp"
#include "algo/mr_consensus.hpp"
#include "consensus_test_util.hpp"
#include "core/anuc.hpp"
#include "core/from_scratch.hpp"
#include "core/stacked_nuc.hpp"
#include "fd/scripted.hpp"

namespace nucon {
namespace {

enum class AlgoKind {
  kMrMajority,    // uniform consensus, needs a correct majority
  kMrSigma,       // uniform consensus, any environment
  kCt,            // uniform consensus, needs a correct majority
  kAnuc,          // nonuniform consensus, any environment
  kStacked,       // nonuniform consensus from raw Sigma^nu, any environment
  kFromScratch,   // uniform consensus, no oracle, needs a correct majority
};

struct MatrixParam {
  AlgoKind algo;
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

const char* algo_name(AlgoKind a) {
  switch (a) {
    case AlgoKind::kMrMajority: return "MrMajority";
    case AlgoKind::kMrSigma: return "MrSigma";
    case AlgoKind::kCt: return "Ct";
    case AlgoKind::kAnuc: return "Anuc";
    case AlgoKind::kStacked: return "Stacked";
    case AlgoKind::kFromScratch: return "FromScratch";
  }
  return "?";
}

bool needs_majority(AlgoKind a) {
  return a == AlgoKind::kMrMajority || a == AlgoKind::kCt ||
         a == AlgoKind::kFromScratch;
}

bool uniform_predicate(AlgoKind a) {
  return a != AlgoKind::kAnuc && a != AlgoKind::kStacked;
}

class IntegrationMatrix : public testing::TestWithParam<MatrixParam> {};

TEST_P(IntegrationMatrix, SolvesItsConsensusVariant) {
  const auto [algo, n, faults, seed] = GetParam();
  constexpr Time kStabilize = 120;
  const FailurePattern fp =
      testutil::sweep_pattern({n, faults, seed}, kStabilize - 20);
  ASSERT_TRUE(!needs_majority(algo) || is_majority(fp.correct(), n));

  testutil::OracleStack stack;
  ConsensusFactory make;
  switch (algo) {
    case AlgoKind::kMrMajority:
      stack = testutil::omega_only(fp, kStabilize, seed);
      make = make_mr_majority(n);
      break;
    case AlgoKind::kMrSigma:
      stack = testutil::omega_sigma(fp, kStabilize, seed);
      make = make_mr_fd_quorum(n);
      break;
    case AlgoKind::kCt:
      stack = testutil::evt_strong(fp, kStabilize, seed);
      make = make_ct(n);
      break;
    case AlgoKind::kAnuc:
      stack = testutil::omega_sigma_nu_plus(fp, kStabilize, seed);
      make = make_anuc(n);
      break;
    case AlgoKind::kStacked: {
      testutil::OracleStack s;
      OmegaOptions oo;
      oo.stabilize_at = kStabilize;
      oo.seed = seed;
      s.first = std::make_unique<OmegaOracle>(fp, oo);
      SigmaNuOptions so;
      so.stabilize_at = kStabilize;
      so.seed = seed + 5;
      s.second = std::make_unique<SigmaNuOracle>(fp, so);
      s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
      stack = std::move(s);
      make = make_stacked_nuc(n);
      break;
    }
    case AlgoKind::kFromScratch:
      stack.first = std::make_unique<ScriptedOracle>(
          [](Pid, Time) { return FdValue{}; });
      make = make_from_scratch(n, static_cast<Pid>((n - 1) / 2));
      break;
  }

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 300'000;

  // Run via simulate_consensus so the recorded run is available for the
  // structural and replay checks.
  const auto proposals = testutil::mixed_proposals(n);
  SimResult sim =
      simulate_consensus(fp, stack.top(), make, proposals, opts);

  const auto decisions = decisions_of(sim.automata);
  const auto verdict = check_consensus(fp, proposals, decisions);

  EXPECT_TRUE(all_correct_decided(fp, sim.automata))
      << algo_name(algo) << " under " << fp.to_string();
  EXPECT_TRUE(verdict.termination) << verdict.detail;
  EXPECT_TRUE(verdict.validity) << verdict.detail;
  EXPECT_TRUE(verdict.nonuniform_agreement) << verdict.detail;
  if (uniform_predicate(algo)) {
    EXPECT_TRUE(verdict.uniform_agreement) << verdict.detail;
  }

  // Model-level invariants of the recorded execution.
  const auto violation = check_run_structure(sim.run);
  EXPECT_FALSE(violation) << *violation;

  const AutomatonFactory generic = [&make, &proposals](Pid p) {
    return make(p, proposals[static_cast<std::size_t>(p)]);
  };
  const ReplayOutcome replayed = replay(sim.run, n, generic);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(decisions_of(replayed.automata), decisions);
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> out;
  for (const AlgoKind algo :
       {AlgoKind::kMrMajority, AlgoKind::kMrSigma, AlgoKind::kCt,
        AlgoKind::kAnuc, AlgoKind::kStacked, AlgoKind::kFromScratch}) {
    for (Pid n : {3, 5}) {
      std::vector<Pid> fault_choices = {0, static_cast<Pid>((n - 1) / 2)};
      if (!needs_majority(algo)) fault_choices.push_back(static_cast<Pid>(n - 1));
      for (Pid faults : fault_choices) {
        for (std::uint64_t seed : {1ull, 2ull}) {
          out.push_back({algo, n, faults, seed});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, IntegrationMatrix,
                         testing::ValuesIn(matrix()), [](const auto& info) {
                           return std::string(algo_name(info.param.algo)) +
                                  "_n" + std::to_string(info.param.n) + "_f" +
                                  std::to_string(info.param.faults) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace nucon
