// Trace & metrics layer: traced runs must be byte-identical wherever they
// execute (serial, worker thread, replay), the sweep runner's failure
// auto-attach must write the same JSONL for any thread count, the reader
// must round-trip the recorder's output, and divergence detection must
// locate the first conflicting decision the harness verdict reports.
#include "trace/trace_recorder.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/sweep.hpp"
#include "trace/metrics.hpp"
#include "trace/trace_reader.hpp"

namespace nucon {
namespace {

exp::SweepPoint quick_point(std::uint64_t seed = 3) {
  exp::SweepPoint pt;
  pt.algo = exp::Algo::kAnuc;
  pt.n = 4;
  pt.faults = 1;
  pt.stabilize = 80;
  pt.seed = seed;
  pt.max_steps = 60'000;
  return pt;
}

/// The failing grid of sweep_test's replay-artifact test: mr-majority with
/// 3 of 5 crashed early can never decide, so every point fails its
/// expectation and (with a trace dir set) gets a trace attached.
exp::SweepGrid failing_grid() {
  exp::SweepGrid grid;
  grid.algos = {exp::Algo::kMrMajority};
  grid.ns = {5};
  grid.fault_counts = {3};
  grid.stabilizes = {40};
  grid.crash_at = 5;
  grid.seed_begin = 1;
  grid.seed_count = 3;
  grid.max_steps = 4'000;
  return grid;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

TEST(TraceRecorderTest, TracedRunIsByteIdenticalAcrossExecutions) {
  const exp::TracedRun a = exp::trace_point(quick_point());
  const exp::TracedRun b = exp::trace_point(quick_point());
  EXPECT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.stats.decisions, b.stats.decisions);
  EXPECT_EQ(a.stats.metrics, b.stats.metrics);
}

TEST(TraceRecorderTest, TracingDoesNotPerturbTheRun) {
  // A recorder is an observer: the traced run's stats must equal the
  // untraced run's bit for bit (same seed, same schedule, same verdict).
  const exp::SweepPoint pt = quick_point();
  const ConsensusRunStats plain = exp::run_point(pt);
  const exp::TracedRun traced = exp::trace_point(pt);
  EXPECT_EQ(traced.stats.decisions, plain.decisions);
  EXPECT_EQ(traced.stats.steps, plain.steps);
  EXPECT_EQ(traced.stats.messages_sent, plain.messages_sent);
  EXPECT_EQ(traced.stats.bytes_sent, plain.bytes_sent);
  EXPECT_EQ(traced.stats.decide_round, plain.decide_round);
  EXPECT_EQ(traced.stats.metrics, plain.metrics);
}

TEST(TraceRecorderTest, SweepFailureTracesAreByteIdenticalAcrossThreadCounts) {
  const exp::SweepGrid grid = failing_grid();
  const std::string dir1 =
      testing::TempDir() + "nucon_trace_t1_" + std::to_string(::getpid());
  const std::string dir8 =
      testing::TempDir() + "nucon_trace_t8_" + std::to_string(::getpid());

  exp::SweepRunner r1(1);
  r1.set_trace_dir(dir1);
  exp::SweepRunner r8(8);
  r8.set_trace_dir(dir8);
  const exp::SweepResult s1 = r1.run(grid);
  const exp::SweepResult s8 = r8.run(grid);

  ASSERT_EQ(s1.aggregate.failures.size(), 3u);
  ASSERT_EQ(s1.aggregate.failure_trace_paths.size(), 3u);
  ASSERT_EQ(s8.aggregate.failure_trace_paths.size(), 3u);

  for (std::size_t i = 0; i < 3; ++i) {
    const std::string bytes1 = slurp(s1.aggregate.failure_trace_paths[i]);
    const std::string bytes8 = slurp(s8.aggregate.failure_trace_paths[i]);
    EXPECT_FALSE(bytes1.empty());
    EXPECT_EQ(bytes1, bytes8) << "trace " << i
                              << " differs between 1 and 8 threads";

    // Each attached trace parses and names the artifact it documents.
    const auto parsed = trace::parse_trace(bytes1);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->artifact,
              s1.aggregate.failures[i].to_string());
    EXPECT_EQ(parsed->n, 5);
    EXPECT_EQ(parsed->expect, "uniform");
    EXPECT_FALSE(parsed->events.empty());
  }

  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir8);
}

TEST(TraceRecorderTest, NoTraceDirMeansNoAttachedPaths) {
  const exp::SweepResult r = exp::SweepRunner(2).run(failing_grid());
  EXPECT_EQ(r.aggregate.failures.size(), 3u);
  EXPECT_TRUE(r.aggregate.failure_trace_paths.empty());
}

TEST(TraceRecorderTest, ReaderRoundTripsRecorderOutput) {
  const exp::SweepPoint pt = quick_point();
  const exp::TracedRun traced = exp::trace_point(pt);
  const auto parsed = trace::parse_trace(traced.jsonl);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->n, 4);
  EXPECT_EQ(parsed->artifact, exp::ReplayArtifact{pt}.to_string());
  EXPECT_EQ(parsed->expect, "nonuniform");
  EXPECT_FALSE(parsed->events.empty());

  // Event stream sanity: every decide in the trace matches the decisions
  // the harness reported, and A_nuc decides without disagreement.
  int decides = 0;
  for (const trace::ParsedEvent& ev : parsed->events) {
    if (ev.kind != "decide") continue;
    ++decides;
    ASSERT_GE(ev.p, 0);
    ASSERT_LT(ev.p, 4);
    ASSERT_TRUE(ev.value.has_value());
    const auto& decision =
        traced.stats.decisions[static_cast<std::size_t>(ev.p)];
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(*ev.value, *decision);
  }
  EXPECT_GT(decides, 0);
  const trace::DivergenceReport report = trace::find_divergence(*parsed);
  EXPECT_FALSE(report.uniform.found);
  EXPECT_FALSE(report.nonuniform.found);
}

TEST(TraceRecorderTest, DivergenceFinderLocatesTheFirstConflictingDecision) {
  // Hunt a seed where the broken §6.3 substitution makes two *correct*
  // processes disagree (the paper's contamination scenario), then check the
  // trace-level divergence matches the harness verdict.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    exp::SweepPoint pt;
    pt.algo = exp::Algo::kNaive;
    pt.n = 5;
    pt.faults = 1;
    pt.seed = seed;
    pt.max_steps = 50'000;
    const exp::TracedRun traced = exp::trace_point(pt);
    if (traced.stats.verdict.nonuniform_agreement) continue;

    const auto parsed = trace::parse_trace(traced.jsonl);
    ASSERT_TRUE(parsed.has_value());
    const trace::DivergenceReport report = trace::find_divergence(*parsed);
    ASSERT_TRUE(report.nonuniform.found) << "seed " << seed;
    EXPECT_TRUE(report.uniform.found);  // correct-vs-correct implies uniform
    EXPECT_TRUE(parsed->is_correct(report.nonuniform.p));
    EXPECT_TRUE(parsed->is_correct(report.nonuniform.earlier_p));
    EXPECT_NE(report.nonuniform.value, report.nonuniform.earlier_value);
    EXPECT_GE(report.nonuniform.t, report.nonuniform.earlier_t);
    return;
  }
  FAIL() << "no contamination witness in 200 seeds — the naive algorithm "
            "should misbehave well before that";
}

TEST(TraceRecorderTest, StateHashesAreOffByDefaultAndDeterministicWhenOn) {
  trace::TraceRecorder::Options opts;
  opts.state_hashes = true;
  const exp::TracedRun a = exp::trace_point(quick_point(), opts);
  const exp::TracedRun b = exp::trace_point(quick_point(), opts);
  EXPECT_EQ(a.jsonl, b.jsonl);

  const auto with = trace::parse_trace(a.jsonl);
  const auto without = trace::parse_trace(exp::trace_point(quick_point()).jsonl);
  ASSERT_TRUE(with.has_value());
  ASSERT_TRUE(without.has_value());
  const auto count_states = [](const trace::ParsedTrace& t) {
    int k = 0;
    for (const auto& ev : t.events) k += ev.kind == "state";
    return k;
  };
  EXPECT_GT(count_states(*with), 0);
  EXPECT_EQ(count_states(*without), 0);
}

TEST(TraceRecorderTest, ParseRejectsTracesWithoutMetaLine) {
  EXPECT_FALSE(trace::parse_trace("").has_value());
  EXPECT_FALSE(trace::parse_trace("{\"k\":\"step\",\"t\":1,\"p\":0}\n").has_value());
  EXPECT_FALSE(trace::parse_trace("not json at all\n").has_value());
}

TEST(TraceRecorderTest, MetricsAccompanyEveryRunEvenUntraced) {
  const ConsensusRunStats stats = exp::run_point(quick_point());
  EXPECT_GT(stats.metrics.counter_value("scheduler.steps"), 0);
  EXPECT_GT(stats.metrics.counter_value("scheduler.delivers"), 0);
  EXPECT_GT(stats.metrics.counter_value("scheduler.sends"), 0);
  EXPECT_GT(stats.metrics.counter_value("consensus.all_correct_decided"), 0);
  EXPECT_EQ(stats.metrics.counter_value("scheduler.steps"),
            static_cast<std::int64_t>(stats.steps));
  const auto& delay = stats.metrics.histograms().at("scheduler.delivery_delay");
  EXPECT_EQ(delay.count(),
            stats.metrics.counter_value("scheduler.delivers"));
  EXPECT_GE(delay.max(), delay.min());
}

TEST(MetricsTest, HistogramQuantilesAndMergeAreExact) {
  trace::Histogram h;
  for (int v = 1; v <= 64; ++v) h.add(v);
  EXPECT_EQ(h.count(), 64);
  EXPECT_EQ(h.sum(), 64 * 65 / 2);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 64);
  // Factor-of-two accuracy: the p50 of 1..64 lives in the (16,32] bucket.
  EXPECT_GE(h.quantile(0.5), 16);
  EXPECT_LE(h.quantile(0.5), 64);
  EXPECT_EQ(h.quantile(1.0), 64);
  EXPECT_EQ(h.quantile(0.0), 1);

  trace::Histogram other;
  other.add(1000);
  h.merge(other);
  EXPECT_EQ(h.count(), 65);
  EXPECT_EQ(h.max(), 1000);

  trace::Histogram sum_ab, a, b;
  for (int v = 0; v < 100; ++v) {
    (v % 2 ? a : b).add(v * 7);
    sum_ab.add(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a, sum_ab);
}

TEST(MetricsTest, RegistryMergeIsCommutativeOnDisjointAndAdditiveOnShared) {
  trace::MetricsRegistry x, y;
  x.counter("shared") = 3;
  x.counter("only_x") = 1;
  y.counter("shared") = 4;
  y.counter("only_y") = 2;
  x.histogram("h").add(8);
  y.histogram("h").add(16);
  x.merge(y);
  EXPECT_EQ(x.counter_value("shared"), 7);
  EXPECT_EQ(x.counter_value("only_x"), 1);
  EXPECT_EQ(x.counter_value("only_y"), 2);
  EXPECT_EQ(x.histograms().at("h").count(), 2);
  EXPECT_EQ(x.histograms().at("h").max(), 16);
  EXPECT_FALSE(x.to_string().empty());
}

}  // namespace
}  // namespace nucon
