// Property sweep: every oracle's generated history must lie in its
// detector class, across system sizes, fault counts, behaviors and seeds.
#include <gtest/gtest.h>

#include "fd/classic.hpp"
#include "fd/composed.hpp"
#include "fd/history.hpp"
#include "fd/omega.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

struct SweepParam {
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

void PrintTo(const SweepParam& p, std::ostream* os) {
  *os << "n" << p.n << "_f" << p.faults << "_s" << p.seed;
}

class OracleSweep : public testing::TestWithParam<SweepParam> {
 protected:
  static constexpr Time kStabilize = 40;
  static constexpr Time kHorizon = 120;

  FailurePattern pattern() const {
    const auto [n, faults, seed] = GetParam();
    Rng rng(seed * 1000003);
    return Environment{n, static_cast<Pid>(n - 1)}.sample(rng, faults,
                                                          kStabilize - 1);
  }

  /// Samples H(p, t) for every alive process at every tick, like a run in
  /// which everyone steps each tick.
  RecordedHistory sample_all(const FailurePattern& fp, Oracle& oracle) const {
    RecordedHistory h;
    for (Time t = 1; t <= kHorizon; ++t) {
      for (Pid p = 0; p < fp.n(); ++p) {
        if (fp.alive_at(p, t)) h.add(p, t, oracle.value(p, t));
      }
    }
    return h;
  }
};

TEST_P(OracleSweep, OmegaHistoryIsInOmega) {
  const FailurePattern fp = pattern();
  OmegaOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  OmegaOracle oracle(fp, opts);
  const auto result = check_omega(sample_all(fp, oracle), fp);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_P(OracleSweep, SigmaKernelHistoryIsInSigma) {
  const FailurePattern fp = pattern();
  SigmaOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  opts.strategy = SigmaStrategy::kKernel;
  SigmaOracle oracle(fp, opts);
  const auto h = sample_all(fp, oracle);
  const auto result = check_sigma(h, fp);
  EXPECT_TRUE(result.ok) << result.detail;
  // Sigma histories are a fortiori Sigma^nu histories.
  EXPECT_TRUE(check_sigma_nu(h, fp).ok);
}

TEST_P(OracleSweep, SigmaMajorityHistoryIsInSigma) {
  const FailurePattern fp = pattern();
  if (!is_majority(fp.correct(), fp.n())) GTEST_SKIP();
  SigmaOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  opts.strategy = SigmaStrategy::kMajority;
  SigmaOracle oracle(fp, opts);
  const auto result = check_sigma(sample_all(fp, oracle), fp);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_P(OracleSweep, SigmaNuHistoryIsInSigmaNuForAllBehaviors) {
  const FailurePattern fp = pattern();
  for (const auto behavior :
       {FaultyQuorumBehavior::kBenign, FaultyQuorumBehavior::kNoise,
        FaultyQuorumBehavior::kAdversarialDisjoint}) {
    SigmaNuOptions opts;
    opts.stabilize_at = kStabilize;
    opts.seed = GetParam().seed;
    opts.faulty = behavior;
    SigmaNuOracle oracle(fp, opts);
    const auto result = check_sigma_nu(sample_all(fp, oracle), fp);
    EXPECT_TRUE(result.ok) << result.detail;
  }
}

TEST_P(OracleSweep, AdversarialSigmaNuIsNotSigmaWhenFaultsExist) {
  const FailurePattern fp = pattern();
  // The violation needs at least one faulty process that lives long enough
  // to take a sample.
  bool faulty_sampled = false;
  for (Pid p : fp.faulty()) faulty_sampled |= fp.crash_time(p) >= 2;
  if (!faulty_sampled) GTEST_SKIP();
  SigmaNuOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  opts.faulty = FaultyQuorumBehavior::kAdversarialDisjoint;
  SigmaNuOracle oracle(fp, opts);
  // Faulty-only quorums after correct stabilization are disjoint from
  // correct quorums: the history must fail Sigma's uniform intersection.
  EXPECT_FALSE(check_sigma(sample_all(fp, oracle), fp).ok);
}

TEST_P(OracleSweep, SigmaNuPlusHistoryIsInSigmaNuPlusForAllBehaviors) {
  const FailurePattern fp = pattern();
  for (const auto behavior :
       {FaultyQuorumBehavior::kBenign, FaultyQuorumBehavior::kNoise,
        FaultyQuorumBehavior::kAdversarialDisjoint}) {
    SigmaNuPlusOptions opts;
    opts.stabilize_at = kStabilize;
    opts.seed = GetParam().seed;
    opts.faulty = behavior;
    SigmaNuPlusOracle oracle(fp, opts);
    const auto result = check_sigma_nu_plus(sample_all(fp, oracle), fp);
    EXPECT_TRUE(result.ok) << result.detail;
  }
}

TEST_P(OracleSweep, PerfectHistoryIsInP) {
  const FailurePattern fp = pattern();
  PerfectOracle oracle(fp);
  const auto h = sample_all(fp, oracle);
  const auto result = check_perfect(h, fp);
  EXPECT_TRUE(result.ok) << result.detail;
  // P histories satisfy every weaker suspect-list class.
  EXPECT_TRUE(check_evt_perfect(h, fp).ok);
  EXPECT_TRUE(check_evt_strong(h, fp).ok);
}

TEST_P(OracleSweep, EvtPerfectHistoryIsInEvtP) {
  const FailurePattern fp = pattern();
  SuspectsOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  EvtPerfectOracle oracle(fp, opts);
  const auto result = check_evt_perfect(sample_all(fp, oracle), fp);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_P(OracleSweep, StrongHistoryIsInS) {
  const FailurePattern fp = pattern();
  SuspectsOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  StrongOracle oracle(fp, opts);
  const auto h = sample_all(fp, oracle);
  const auto result = check_strong(h, fp);
  EXPECT_TRUE(result.ok) << result.detail;
  EXPECT_TRUE(check_evt_strong(h, fp).ok);
}

TEST_P(OracleSweep, EvtStrongHistoryIsInEvtS) {
  const FailurePattern fp = pattern();
  SuspectsOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  EvtStrongOracle oracle(fp, opts);
  const auto result = check_evt_strong(sample_all(fp, oracle), fp);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_P(OracleSweep, ComposedPairCombinesComponents) {
  const FailurePattern fp = pattern();
  OmegaOptions oo;
  oo.stabilize_at = kStabilize;
  oo.seed = GetParam().seed;
  OmegaOracle omega(fp, oo);
  SigmaNuPlusOptions so;
  so.stabilize_at = kStabilize;
  so.seed = GetParam().seed + 1;
  SigmaNuPlusOracle sigma(fp, so);
  ComposedOracle pair(omega, sigma);

  const auto h = sample_all(fp, pair);
  for (const Sample& s : h.samples()) {
    EXPECT_TRUE(s.value.has_leader());
    EXPECT_TRUE(s.value.has_quorum());
    EXPECT_EQ(s.value.leader(), omega.value(s.p, s.t).leader());
    EXPECT_EQ(s.value.quorum(), sigma.value(s.p, s.t).quorum());
  }
  EXPECT_TRUE(check_omega(h, fp).ok);
  EXPECT_TRUE(check_sigma_nu_plus(h, fp).ok);
}

TEST_P(OracleSweep, NoQuorumOracleEverEmitsAnEmptyQuorum) {
  // Regression: the kNoise faulty branch once drew k from [0, n], and k=0
  // produced an empty quorum that vacuously satisfied every
  // "quorum ⊆ heard-from" wait. No mode of any quorum oracle may do that.
  const FailurePattern fp = pattern();
  for (const auto behavior :
       {FaultyQuorumBehavior::kBenign, FaultyQuorumBehavior::kNoise,
        FaultyQuorumBehavior::kAdversarialDisjoint}) {
    SigmaNuOptions nu;
    nu.stabilize_at = kStabilize;
    nu.seed = GetParam().seed;
    nu.faulty = behavior;
    SigmaNuOracle nu_oracle(fp, nu);
    for (const Sample& s : sample_all(fp, nu_oracle).samples()) {
      EXPECT_FALSE(s.value.quorum().empty())
          << "Sigma^nu mode " << static_cast<int>(behavior) << " at p=" << s.p
          << " t=" << s.t;
    }

    SigmaNuPlusOptions plus;
    plus.stabilize_at = kStabilize;
    plus.seed = GetParam().seed;
    plus.faulty = behavior;
    SigmaNuPlusOracle plus_oracle(fp, plus);
    for (const Sample& s : sample_all(fp, plus_oracle).samples()) {
      EXPECT_FALSE(s.value.quorum().empty())
          << "Sigma^nu+ mode " << static_cast<int>(behavior) << " at p=" << s.p
          << " t=" << s.t;
    }
  }
  for (const auto strategy : {SigmaStrategy::kKernel, SigmaStrategy::kMajority}) {
    if (strategy == SigmaStrategy::kMajority &&
        !is_majority(fp.correct(), fp.n())) {
      continue;
    }
    SigmaOptions so;
    so.stabilize_at = kStabilize;
    so.seed = GetParam().seed;
    so.strategy = strategy;
    SigmaOracle oracle(fp, so);
    for (const Sample& s : sample_all(fp, oracle).samples()) {
      EXPECT_FALSE(s.value.quorum().empty()) << "Sigma at p=" << s.p;
    }
  }
}

TEST_P(OracleSweep, OracleIsAProperFunctionOfPAndT) {
  const FailurePattern fp = pattern();
  SigmaNuPlusOptions opts;
  opts.stabilize_at = kStabilize;
  opts.seed = GetParam().seed;
  SigmaNuPlusOracle oracle(fp, opts);
  for (Time t = 1; t < 50; t += 7) {
    for (Pid p = 0; p < fp.n(); ++p) {
      EXPECT_EQ(oracle.value(p, t), oracle.value(p, t));
    }
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (Pid n : {2, 3, 4, 5, 7}) {
    for (Pid faults = 0; faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleSweep, testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_f" +
                                  std::to_string(info.param.faults) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace nucon
