// The §6.3 contamination counterexample, mechanized: naively substituting
// Sigma^nu quorums into Mostéfaoui-Raynal VIOLATES nonuniform agreement,
// while A_nuc under the same adversarial oracle family never does.
#include "algo/naive_sigma_nu.hpp"

#include <gtest/gtest.h>

#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "fd/scripted.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

TEST(Contamination, NaiveAlgorithmViolatesNonuniformAgreement) {
  ContaminationSetup setup;
  const ContaminationResult result = find_contamination(setup, 400);
  EXPECT_TRUE(result.found)
      << "no contamination found in " << result.runs_tried << " runs";
  EXPECT_FALSE(result.stats.verdict.nonuniform_agreement);
  // The violating run still satisfies validity: contamination spreads a
  // proposed-but-stale estimate, never an invented value.
  EXPECT_TRUE(result.stats.verdict.validity);
}

TEST(Contamination, UniformViolationsAreCommon) {
  // Even before correct processes disagree, the faulty process routinely
  // decides alone on its disjoint quorum: uniform agreement breaks often.
  ContaminationSetup setup;
  const ContaminationResult result = find_contamination(setup, 100);
  EXPECT_GT(result.uniform_violations + (result.found ? 1 : 0), 0);
}

TEST(Contamination, AnucIsImmuneUnderTheSameAdversary) {
  ContaminationSetup setup;
  const int violations = count_nonuniform_violations(
      setup, make_anuc(setup.n), 150, /*use_sigma_nu_plus=*/true);
  EXPECT_EQ(violations, 0);
}

TEST(Contamination, BenignSigmaWouldNotContaminate) {
  // Control: the same naive algorithm with a real Sigma history (kernel
  // strategy — all quorums intersect) keeps even uniform agreement. The
  // defect is the detector substitution, not the algorithm skeleton.
  ContaminationSetup setup;
  int nonuniform = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    FailurePattern fp(setup.n);
    fp.set_crash(setup.faulty, setup.crash_at);
    // A Sigma-style scripted oracle: everyone's quorum is {kernel} where
    // kernel is correct, and leadership stabilizes like the real setup.
    const Pid kernel = fp.correct().min();
    ScriptedOracle oracle([&fp, kernel, &setup](Pid p, Time t) {
      FdValue v = FdValue::of_quorum(ProcessSet::single(kernel));
      v.set_leader(t >= setup.omega_stabilize_at
                       ? kernel
                       : static_cast<Pid>((t / 3 + p) % fp.n()));
      return v;
    });
    std::vector<Value> proposals(static_cast<std::size_t>(setup.n));
    for (Pid p = 0; p < setup.n; ++p) proposals[static_cast<std::size_t>(p)] = p % 2;
    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = setup.max_steps;
    const auto stats = run_consensus(fp, oracle, make_mr_fd_quorum(setup.n),
                                     proposals, opts);
    nonuniform += !stats.verdict.nonuniform_agreement;
    EXPECT_TRUE(stats.verdict.uniform_agreement) << "seed " << seed;
  }
  EXPECT_EQ(nonuniform, 0);
}

TEST(Contamination, LargerSystemAlsoContaminates) {
  ContaminationSetup setup;
  setup.n = 5;
  setup.faulty = 4;
  const ContaminationResult result = find_contamination(setup, 400);
  EXPECT_TRUE(result.found)
      << "no contamination found in " << result.runs_tried << " runs";
}

TEST(Contamination, ViolatingRunIsReproducible) {
  ContaminationSetup setup;
  const ContaminationResult first = find_contamination(setup, 400);
  ASSERT_TRUE(first.found);
  // Re-running from the violating seed reproduces the violation.
  const ContaminationResult again =
      find_contamination(setup, 1, first.seed);
  EXPECT_TRUE(again.found);
  EXPECT_EQ(again.seed, first.seed);
}

}  // namespace
}  // namespace nucon
