// The hot-path profiling layer and the trend/regression engine.
//
// Pins the PR's acceptance criteria: per-phase call counts are a pure
// function of the run (and fold into the metrics registry only when a
// collector is attached), the lap discipline covers >= 90% of the step
// envelope, write_report_json is atomic, and nucon_bench's diff exit
// codes flip on a synthetic injected regression.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "exp/sweep.hpp"
#include "obs/report.hpp"
#include "prof/profiler.hpp"
#include "prof/trend.hpp"
#include "trace/metrics.hpp"
#include "util/minijson.hpp"

namespace nucon {
namespace {

[[maybe_unused]] exp::SweepPoint small_point() {
  exp::SweepPoint pt;
  pt.algo = exp::Algo::kAnuc;
  pt.n = 4;
  pt.faults = 1;
  pt.max_steps = 20'000;
  pt.seed = 7;
  return pt;
}

/// Counters with the prof.* entries stripped, for unprofiled comparison.
[[maybe_unused]] std::map<std::string, std::int64_t> without_prof(
    const trace::MetricsRegistry& m) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, value] : m.counters()) {
    if (name.rfind("prof.", 0) != 0) out[name] = value;
  }
  return out;
}

TEST(Profiler, PhaseNamesAreStable) {
  EXPECT_STREQ(prof::phase_name(prof::Phase::kStep), "step");
  EXPECT_STREQ(prof::phase_name(prof::Phase::kDeliveryChoice),
               "delivery_choice");
  EXPECT_STREQ(prof::phase_name(prof::Phase::kOracleSample), "oracle_sample");
  EXPECT_STREQ(prof::phase_name(prof::Phase::kTraceHook), "trace_hook");
  EXPECT_STREQ(prof::phase_name(prof::Phase::kAutomatonStep),
               "automaton_step");
  EXPECT_STREQ(prof::phase_name(prof::Phase::kPayloadEncode),
               "payload_encode");
}

TEST(Profiler, CollectorArithmeticIsExact) {
  prof::ProfileCollector c;
  EXPECT_TRUE(c.empty());
  c.record(prof::Phase::kStep, 1000);
  c.record(prof::Phase::kDeliveryChoice, 600);
  c.record(prof::Phase::kOracleSample, 300);
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.phase(prof::Phase::kStep).calls, 1);
  EXPECT_EQ(c.phase(prof::Phase::kDeliveryChoice).ticks, 600);
  // (600 + 300) / 1000 of the envelope is covered.
  EXPECT_DOUBLE_EQ(c.covered_fraction(), 0.9);

  prof::ProfileCollector d;
  d.record(prof::Phase::kStep, 1000);
  d.record(prof::Phase::kDeliveryChoice, 400);
  c.merge(d);
  EXPECT_EQ(c.phase(prof::Phase::kStep).calls, 2);
  EXPECT_EQ(c.phase(prof::Phase::kStep).ticks, 2000);
  EXPECT_EQ(c.phase(prof::Phase::kDeliveryChoice).ticks, 1000);
  // An empty collector reports zero coverage, not full coverage: "no
  // timing data" must never render as a healthy coverage=1 row (that
  // masked the H3 all-zero-ns regression).
  EXPECT_DOUBLE_EQ(prof::ProfileCollector{}.covered_fraction(), 0.0);
}

TEST(Profiler, FoldCountsIntoRegistersCallsOnly) {
  prof::ProfileCollector c;
  c.record(prof::Phase::kStep, 12345);
  c.record(prof::Phase::kTraceHook, 99);
  c.record(prof::Phase::kTraceHook, 99);
  trace::MetricsRegistry m;
  c.fold_counts_into(m);
  EXPECT_EQ(m.counter_value("prof.step.calls"), 1);
  EXPECT_EQ(m.counter_value("prof.trace_hook.calls"), 2);
  EXPECT_EQ(m.counter_value("prof.oracle_sample.calls"), 0);
}

#ifndef NUCON_DISABLE_PROFILING

TEST(Profiler, StepProbeLapsPartitionTheEnvelope) {
  prof::ProfileCollector c;
  prof::StepProbe probe(&c);
  probe.begin();
  probe.lap(prof::Phase::kDeliveryChoice);
  probe.lap(prof::Phase::kOracleSample);
  probe.lap(prof::Phase::kTraceHook);
  probe.lap(prof::Phase::kAutomatonStep);
  probe.lap(prof::Phase::kPayloadEncode);
  probe.lap(prof::Phase::kTraceHook);
  probe.finish();

  EXPECT_EQ(c.phase(prof::Phase::kStep).calls, 1);
  EXPECT_EQ(c.phase(prof::Phase::kTraceHook).calls, 2);
  std::int64_t inner = 0;
  for (int i = 1; i < prof::kPhaseCount; ++i) {
    inner += c.phase(static_cast<prof::Phase>(i)).ticks;
  }
  // Consecutive laps share their boundary timestamps, so the inner phases
  // can never exceed the envelope.
  EXPECT_LE(inner, c.phase(prof::Phase::kStep).ticks);
  EXPECT_GE(c.covered_fraction(), 0.0);
  EXPECT_LE(c.covered_fraction(), 1.0);
}

TEST(Profiler, NullProbeRecordsNothing) {
  prof::StepProbe probe(nullptr);
  probe.begin();
  probe.lap(prof::Phase::kDeliveryChoice);
  probe.finish();  // must not crash; nothing to assert beyond that
}

TEST(Profiler, SchedulerCallCountsMatchSteps) {
  prof::ProfileCollector profile;
  const ConsensusRunStats stats = exp::run_point(small_point(), &profile);
  const auto steps = static_cast<std::int64_t>(stats.steps);
  ASSERT_GT(steps, 0);
  EXPECT_EQ(profile.phase(prof::Phase::kStep).calls, steps);
  EXPECT_EQ(profile.phase(prof::Phase::kDeliveryChoice).calls, steps);
  EXPECT_EQ(profile.phase(prof::Phase::kOracleSample).calls, steps);
  EXPECT_EQ(profile.phase(prof::Phase::kAutomatonStep).calls, steps);
  EXPECT_EQ(profile.phase(prof::Phase::kPayloadEncode).calls, steps);
  // The bookkeeping phase is charged twice per step: record/trace before
  // the automaton, state-hash/decide/observer after it.
  EXPECT_EQ(profile.phase(prof::Phase::kTraceHook).calls, 2 * steps);
  // The deterministic fold mirrors the collector.
  EXPECT_EQ(stats.metrics.counter_value("prof.step.calls"), steps);
  EXPECT_EQ(stats.metrics.counter_value("prof.trace_hook.calls"), 2 * steps);
}

TEST(Profiler, SchedulerCoverageMeetsAcceptanceFloor) {
  prof::ProfileCollector profile;
  (void)exp::run_point(small_point(), &profile);
  // The PR's acceptance criterion: the per-phase breakdown accounts for
  // >= 90% of the step envelope. The lap discipline makes it ~100%.
  EXPECT_GE(profile.covered_fraction(), 0.9);
}

TEST(Profiler, ProfiledRunReportsNonzeroPhaseTimes) {
  // Regression guard for the H3 "ns/call prints 0 despite coverage=1"
  // bug: an unserialized rdtsc read taken after a context switch (or SMI)
  // can precede the probe's previous timestamp, and the unsigned delta
  // then wrapped to ~2^64 ticks — every later ns_per_call computation
  // drowned. The probes clamp such deltas to zero now, so a real profiled
  // run must report strictly positive time in the envelope and in every
  // phase that executes once per step.
  prof::ProfileCollector profile;
  const ConsensusRunStats stats = exp::run_point(small_point(), &profile);
  ASSERT_GT(stats.steps, 0u);
  EXPECT_GT(profile.ns_per_call(prof::Phase::kStep), 0.0);
  EXPECT_GT(profile.ns_per_call(prof::Phase::kAutomatonStep), 0.0);
  EXPECT_GT(profile.ns_per_call(prof::Phase::kDeliveryChoice), 0.0);
  // Coverage must also be strictly positive — an all-zero inner breakdown
  // would report 0 and fail here even if the envelope survived.
  EXPECT_GT(profile.covered_fraction(), 0.0);
  EXPECT_LE(profile.covered_fraction(), 1.0);
}

TEST(Profiler, CallCountsAreDeterministicAcrossRuns) {
  prof::ProfileCollector a;
  prof::ProfileCollector b;
  const ConsensusRunStats sa = exp::run_point(small_point(), &a);
  const ConsensusRunStats sb = exp::run_point(small_point(), &b);
  for (int i = 0; i < prof::kPhaseCount; ++i) {
    const auto ph = static_cast<prof::Phase>(i);
    EXPECT_EQ(a.phase(ph).calls, b.phase(ph).calls) << prof::phase_name(ph);
  }
  EXPECT_EQ(sa.metrics, sb.metrics);
}

TEST(Profiler, AttachingACollectorDoesNotPerturbTheRun) {
  prof::ProfileCollector profile;
  const ConsensusRunStats with = exp::run_point(small_point(), &profile);
  const ConsensusRunStats without = exp::run_point(small_point());
  EXPECT_EQ(without.metrics.counter_value("prof.step.calls"), 0);
  EXPECT_EQ(without_prof(with.metrics), without_prof(without.metrics));
  EXPECT_EQ(with.steps, without.steps);
  EXPECT_EQ(with.messages_sent, without.messages_sent);
}

TEST(Profiler, ReusedCollectorChargesOnlyThisRunsCalls) {
  prof::ProfileCollector profile;
  const ConsensusRunStats first = exp::run_point(small_point(), &profile);
  const ConsensusRunStats second = exp::run_point(small_point(), &profile);
  // Same point, same seed: the delta fold must charge each run the same
  // count even though the collector accumulated both.
  EXPECT_EQ(first.metrics.counter_value("prof.step.calls"),
            second.metrics.counter_value("prof.step.calls"));
  EXPECT_EQ(profile.phase(prof::Phase::kStep).calls,
            2 * first.metrics.counter_value("prof.step.calls"));
}

TEST(Profiler, SweepProfileIsThreadCountInvariant) {
  exp::SweepGrid grid;
  grid.algos = {exp::Algo::kAnuc, exp::Algo::kCt};
  grid.ns = {4};
  grid.seed_count = 2;
  grid.max_steps = 10'000;

  exp::SweepRunner serial(1);
  serial.set_profiling(true);
  exp::SweepRunner wide(8);
  wide.set_profiling(true);
  const exp::SweepResult a = serial.run(grid);
  const exp::SweepResult b = wide.run(grid);

  ASSERT_FALSE(a.profile.empty());
  for (int i = 0; i < prof::kPhaseCount; ++i) {
    const auto ph = static_cast<prof::Phase>(i);
    EXPECT_EQ(a.profile.phase(ph).calls, b.profile.phase(ph).calls)
        << prof::phase_name(ph);
  }
  EXPECT_EQ(a.aggregate.metrics, b.aggregate.metrics);
  EXPECT_GT(
      a.aggregate.metrics.counter_value("prof.step.calls"), 0);
}

#endif  // NUCON_DISABLE_PROFILING

TEST(Trend, DirectionClassification) {
  using prof::Direction;
  EXPECT_EQ(prof::direction_of("sweep:hotpath:steps_per_second"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(prof::direction_of("table:H1: baseline:anuc:steps/s"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(prof::direction_of("sweep:hotpath:wall_seconds"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(prof::direction_of("profile:anuc-n64:ns_per_step"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(prof::direction_of("profile:anuc-n64:oracle_sample:ns_per_call"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(prof::direction_of("timing:sweep:hotpath-sweep:execute"),
            Direction::kInformational);
  EXPECT_EQ(prof::direction_of("profile:anuc-n64:covered_fraction"),
            Direction::kInformational);
  EXPECT_EQ(prof::direction_of("table:H1: baseline:anuc:reduction"),
            Direction::kInformational);
  EXPECT_EQ(prof::direction_of("table:H1: baseline:anuc:steps"),
            Direction::kInformational);
}

obs::BenchReport synthetic_report(double steps_per_second) {
  obs::BenchReport r;
  r.name = "synthetic";
  obs::SweepSection s;
  s.name = "main";
  s.runs = 4;
  s.wall_seconds = 2.0;
  s.steps_per_second = steps_per_second;
  r.sweeps.push_back(s);
  r.tables.push_back(obs::TableSection{
      "T1", {"algorithm", "steps/s", "note"}, {{"anuc", "1000", "ok"}}});
  prof::ProfileCollector c;
  c.record(prof::Phase::kStep, 1000);
  c.record(prof::Phase::kOracleSample, 950);
  r.profiles.push_back(obs::profile_section_of("anuc-n6", c));
  return r;
}

TEST(Trend, ExtractsMetricsFromReportJson) {
  const std::string json =
      obs::report_json(synthetic_report(5000.0), /*include_timings=*/true);
  ASSERT_EQ(obs::validate_report_json(json), std::nullopt) << json;
  std::string error;
  const auto entry = prof::extract_trend(json, &error);
  ASSERT_TRUE(entry.has_value()) << error;
  EXPECT_EQ(entry->bench, "synthetic");
  EXPECT_DOUBLE_EQ(entry->metrics.at("sweep:main:steps_per_second"), 5000.0);
  EXPECT_DOUBLE_EQ(entry->metrics.at("sweep:main:wall_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(entry->metrics.at("table:T1:anuc:steps/s"), 1000.0);
  EXPECT_EQ(entry->metrics.count("table:T1:anuc:note"), 0u);
  EXPECT_GT(entry->metrics.at("profile:anuc-n6:ns_per_step"), 0.0);
  EXPECT_GT(
      entry->metrics.at("profile:anuc-n6:oracle_sample:ns_per_call"), 0.0);
  // Timing-free documents carry no wall-clock metrics at all.
  const auto bare = prof::extract_trend(
      obs::report_json(synthetic_report(5000.0), /*include_timings=*/false),
      &error);
  ASSERT_TRUE(bare.has_value()) << error;
  EXPECT_EQ(bare->metrics.count("sweep:main:steps_per_second"), 0u);
  EXPECT_EQ(bare->metrics.count("profile:anuc-n6:ns_per_step"), 0u);
}

TEST(Trend, LedgerLineRoundTrips) {
  prof::TrendEntry e;
  e.bench = "hotpath";
  e.machine = "box-1";
  e.git_sha = "abc1234";
  e.recorded_at = "2026-08-07T12:00:00Z";
  e.metrics["sweep:main:steps_per_second"] = 123456.75;
  e.metrics["profile:anuc-n64:ns_per_step"] = 812.5;
  const std::string line = prof::ledger_line(e);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  std::string error;
  const auto back = prof::parse_ledger_line(line, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->bench, e.bench);
  EXPECT_EQ(back->machine, e.machine);
  EXPECT_EQ(back->git_sha, e.git_sha);
  EXPECT_EQ(back->recorded_at, e.recorded_at);
  EXPECT_EQ(back->metrics, e.metrics);

  EXPECT_FALSE(prof::parse_ledger_line("{not json", &error).has_value());
  EXPECT_FALSE(prof::parse_ledger_line("{\"v\":99}", &error).has_value());
}

TEST(Trend, DiffFlagsSyntheticRegression) {
  prof::TrendEntry before;
  before.metrics["sweep:main:steps_per_second"] = 1000.0;
  before.metrics["sweep:main:wall_seconds"] = 1.0;
  before.metrics["timing:whatever"] = 5.0;

  // 30% throughput drop at 25% tolerance: regression.
  prof::TrendEntry after = before;
  after.metrics["sweep:main:steps_per_second"] = 700.0;
  prof::TrendDiff d = prof::diff_trends(before, after, 0.25);
  EXPECT_TRUE(d.has_regression());
  EXPECT_EQ(d.regressions, 1);

  // 10% drop: within tolerance.
  after.metrics["sweep:main:steps_per_second"] = 900.0;
  d = prof::diff_trends(before, after, 0.25);
  EXPECT_FALSE(d.has_regression());

  // Lower-is-better: wall clock growing 50% regresses...
  after.metrics["sweep:main:steps_per_second"] = 1000.0;
  after.metrics["sweep:main:wall_seconds"] = 1.5;
  d = prof::diff_trends(before, after, 0.25);
  EXPECT_TRUE(d.has_regression());
  // ...unless an override loosens that one key.
  d = prof::diff_trends(before, after, 0.25,
                        {{"sweep:main:wall_seconds", 0.6}});
  EXPECT_FALSE(d.has_regression());

  // Informational metrics never regress; one-sided metrics stay
  // uncompared rather than failing the diff.
  after.metrics["timing:whatever"] = 50.0;
  after.metrics["sweep:other:steps_per_second"] = 1.0;
  after.metrics["sweep:main:wall_seconds"] = 1.0;
  d = prof::diff_trends(before, after, 0.25);
  EXPECT_FALSE(d.has_regression());
  EXPECT_EQ(d.compared, 2);
}

TEST(Report, WriteIsAtomicAndValidates) {
  const auto dir = std::filesystem::temp_directory_path() / "nucon_prof_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "BENCH_synthetic.json").string();
  ASSERT_TRUE(obs::write_report_json(synthetic_report(1.0), path));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::ifstream f(path);
  std::string json((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(obs::validate_report_json(json), std::nullopt);
  std::filesystem::remove_all(dir);
}

TEST(Minijson, ReportsLineNumbers) {
  util::JsonParseError error;
  EXPECT_FALSE(util::parse_json("{\n  \"a\": }", &error).has_value());
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.to_string().find("line 2"), std::string::npos);

  const auto doc = util::parse_json(
      "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true}}", &error);
  ASSERT_TRUE(doc.has_value()) << error.to_string();
  ASSERT_NE(doc->find("a"), nullptr);
  ASSERT_EQ(doc->find("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc->find("a")->array[1].number, 2.5);
  ASSERT_NE(doc->find("b"), nullptr);
  EXPECT_TRUE(doc->find("b")->find("c")->boolean);
  // Trailing bytes after the document are a parse error, not silence.
  EXPECT_FALSE(util::parse_json("{} trailing", &error).has_value());
}

#ifdef NUCON_BENCH_BIN

int exit_code_of(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST(NuconBench, DiffExitCodesFlipOnInjectedRegression) {
  const auto dir = std::filesystem::temp_directory_path() / "nucon_bench_test";
  std::filesystem::create_directories(dir);
  const std::string before = (dir / "before.json").string();
  const std::string good = (dir / "good.json").string();
  const std::string bad = (dir / "bad.json").string();
  ASSERT_TRUE(obs::write_report_json(synthetic_report(1000.0), before));
  ASSERT_TRUE(obs::write_report_json(synthetic_report(950.0), good));
  // The injected regression: throughput halved.
  ASSERT_TRUE(obs::write_report_json(synthetic_report(500.0), bad));

  const std::string bin = NUCON_BENCH_BIN;
  EXPECT_EQ(exit_code_of(bin + " diff " + before + " " + good +
                         " --tolerance 0.25 > /dev/null"),
            0);
  EXPECT_EQ(exit_code_of(bin + " diff " + before + " " + bad +
                         " --tolerance 0.25 > /dev/null"),
            1);
  EXPECT_EQ(exit_code_of(bin + " diff " + before + " /nonexistent.json " +
                         " 2> /dev/null"),
            2);

  // record + check over a tiny history: the regression gates, then
  // --informational downgrades it to exit 0.
  const std::string hist = (dir / "history").string();
  EXPECT_EQ(exit_code_of(bin + " record --history " + hist +
                         " --sha a --machine m " + before + " > /dev/null"),
            0);
  EXPECT_EQ(exit_code_of(bin + " record --history " + hist +
                         " --sha b --machine m " + bad + " > /dev/null"),
            0);
  EXPECT_EQ(exit_code_of(bin + " check --history " + hist + " > /dev/null"),
            1);
  EXPECT_EQ(exit_code_of(bin + " check --history " + hist +
                         " --informational > /dev/null"),
            0);

  const std::string manifest = (dir / "BENCH_manifest.json").string();
  EXPECT_EQ(exit_code_of(bin + " manifest --out " + manifest + " " + before +
                         " " + good + " > /dev/null"),
            0);
  EXPECT_TRUE(std::filesystem::exists(manifest));
  std::filesystem::remove_all(dir);
}

#endif  // NUCON_BENCH_BIN

}  // namespace
}  // namespace nucon
