// Omega from scratch (adaptive-timeout heartbeats) and the full
// no-oracle consensus stack (Omega election + Sigma-from-majority + MR).
#include "core/omega_election.hpp"

#include <gtest/gtest.h>

#include "algo/harness.hpp"
#include "core/from_scratch.hpp"
#include "fd/history.hpp"
#include "fd/scripted.hpp"

namespace nucon {
namespace {

ScriptedOracle no_fd() {
  return ScriptedOracle([](Pid, Time) { return FdValue{}; });
}

struct ElectionParam {
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

class OmegaElectionSweep : public testing::TestWithParam<ElectionParam> {};

TEST_P(OmegaElectionSweep, EmulatedHistoryIsInOmega) {
  const auto [n, faults, seed] = GetParam();
  Rng rng(seed * 50331653ULL);
  const FailurePattern fp =
      Environment{n, static_cast<Pid>(n - 1)}.sample(rng, faults, 200);

  auto oracle = no_fd();
  RecordedHistory emulated;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 30'000;
  opts = with_emulation_recording(std::move(opts), emulated);
  (void)simulate(fp, oracle, make_omega_election(n), opts);

  ASSERT_FALSE(emulated.empty());
  const auto result = check_omega(emulated, fp);
  EXPECT_TRUE(result.ok) << result.detail << " under " << fp.to_string();
}

std::vector<ElectionParam> election_params() {
  std::vector<ElectionParam> out;
  for (Pid n : {2, 3, 5, 8}) {
    for (Pid faults = 0; faults < n; faults += (n > 4 ? 2 : 1)) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OmegaElectionSweep,
                         testing::ValuesIn(election_params()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_f" +
                                  std::to_string(info.param.faults) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(OmegaElection, WorksWithCorrectMinority) {
  // Unlike quorums, leadership needs no majority: 1 correct of 5.
  FailurePattern fp(5);
  for (Pid p = 0; p < 4; ++p) fp.set_crash(p, 50 + 20 * p);

  auto oracle = no_fd();
  RecordedHistory emulated;
  SchedulerOptions opts;
  opts.seed = 3;
  opts.max_steps = 40'000;
  opts = with_emulation_recording(std::move(opts), emulated);
  (void)simulate(fp, oracle, make_omega_election(5), opts);

  const auto result = check_omega(emulated, fp);
  EXPECT_TRUE(result.ok) << result.detail;
  // The eventual leader must be process 4, the only correct one.
  EXPECT_EQ(emulated.samples().back().value.leader(), 4);
}

TEST(OmegaElection, FalseSuspicionsAreFinite) {
  const FailurePattern fp(4);
  auto oracle = no_fd();
  SchedulerOptions opts;
  opts.seed = 7;
  opts.max_steps = 40'000;
  const SimResult sim = simulate(fp, oracle, make_omega_election(4), opts);
  for (Pid p = 0; p < 4; ++p) {
    const auto* e = static_cast<const OmegaElection*>(
        sim.automata[static_cast<std::size_t>(p)].get());
    // With everyone correct, suspicion noise settles: by the end nobody
    // is suspected and the backoff kept false suspicions small.
    EXPECT_TRUE(e->suspected().empty()) << p;
    EXPECT_LT(e->false_suspicions(), 64) << p;
  }
}

TEST(FromScratch, UniformConsensusWithNoOracleUnderMajority) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    FailurePattern fp(5);
    if (seed > 1) fp.set_crash(static_cast<Pid>(seed), 100 * seed);

    auto oracle = no_fd();
    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 200'000;
    const auto stats = run_consensus(fp, oracle, make_from_scratch(5, 2),
                                     {0, 1, 0, 1, 0}, opts);
    EXPECT_TRUE(stats.all_correct_decided) << "seed " << seed;
    EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
  }
}

TEST(FromScratch, SafetyHoldsEvenOutsideThePrecondition) {
  // 3 of 5 crash with t = 2: the Sigma layer's quorums can stop being
  // quorums, so termination may fail — but agreement must not.
  FailurePattern fp(5);
  fp.set_crash(2, 150);
  fp.set_crash(3, 150);
  fp.set_crash(4, 150);
  auto oracle = no_fd();
  SchedulerOptions opts;
  opts.seed = 9;
  opts.max_steps = 60'000;
  const auto stats = run_consensus(fp, oracle, make_from_scratch(5, 2),
                                   {0, 1, 0, 1, 0}, opts);
  EXPECT_TRUE(stats.verdict.uniform_agreement) << stats.verdict.detail;
  EXPECT_TRUE(stats.verdict.validity);
}

TEST(FromScratch, UnknownChannelBytesAreDropped) {
  FromScratchConsensus a(0, 1, 5, 2);
  std::vector<Outgoing> out;
  const Bytes junk = {0x09, 1, 2};
  const Incoming in{1, &junk};
  a.step(&in, FdValue{}, out);
  EXPECT_FALSE(a.decision());
}

}  // namespace
}  // namespace nucon
