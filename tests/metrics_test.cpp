// MetricsRegistry rendering and Histogram merge edge cases.
//
// The sweep fold and the new profiling layer both lean on merge being a
// plain bucket-wise sum with exact min/max/count bookkeeping, and
// trace_dump --metrics prints registries through to_string — so the edge
// cases (empty sides, bucket-boundary values, disjoint key sets) get
// their own pins here.
#include <gtest/gtest.h>

#include "trace/metrics.hpp"

namespace nucon::trace {
namespace {

TEST(Histogram, MergeWithEmptySidesIsIdentity) {
  Histogram a;
  a.add(4);
  a.add(100);
  const Histogram before = a;

  Histogram empty;
  a.merge(empty);  // empty right side: no change
  EXPECT_EQ(a, before);

  Histogram b;
  b.merge(a);  // empty left side: adopts a wholesale, min/max included
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.min(), 4);
  EXPECT_EQ(b.max(), 100);
  EXPECT_EQ(b.sum(), 104);

  Histogram c;
  c.merge(Histogram{});  // both empty
  EXPECT_EQ(c.count(), 0);
  EXPECT_EQ(c.min(), 0);
  EXPECT_EQ(c.max(), 0);
  EXPECT_DOUBLE_EQ(c.mean(), 0.0);
}

TEST(Histogram, BucketBoundaryValuesStayExactThroughMerge) {
  // Powers of two sit on bucket edges; non-positive values share bucket 0.
  Histogram a;
  a.add(0);
  a.add(1);
  a.add(2);
  Histogram b;
  b.add(4);
  b.add(8);
  b.add(1024);
  a.merge(b);
  EXPECT_EQ(a.count(), 6);
  EXPECT_EQ(a.sum(), 0 + 1 + 2 + 4 + 8 + 1024);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 1024);
  // Quantiles stay within the observed range even at the extremes.
  EXPECT_EQ(a.quantile(0.0), 0);
  EXPECT_EQ(a.quantile(1.0), 1024);
  EXPECT_LE(a.quantile(0.5), 1024);

  // Merging in either order yields the same histogram (bucket-wise sums
  // commute) — the property the parallel sweep fold relies on.
  Histogram left;
  left.add(0);
  left.add(1);
  left.add(2);
  Histogram right;
  right.add(4);
  right.add(8);
  right.add(1024);
  right.merge(left);
  EXPECT_EQ(a, right);
}

TEST(Histogram, NegativeValuesLandInBucketZero) {
  Histogram h;
  h.add(-5);
  h.add(3);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 3);
  EXPECT_EQ(h.sum(), -2);
}

TEST(MetricsRegistry, MergeUnionsDisjointKeySets) {
  MetricsRegistry a;
  a.counter("only.in.a") = 3;
  a.counter("shared") = 10;
  a.histogram("hist.a").add(7);

  MetricsRegistry b;
  b.counter("only.in.b") = 5;
  b.counter("shared") = 1;
  b.histogram("hist.b").add(9);

  a.merge(b);
  EXPECT_EQ(a.counter_value("only.in.a"), 3);
  EXPECT_EQ(a.counter_value("only.in.b"), 5);
  EXPECT_EQ(a.counter_value("shared"), 11);
  EXPECT_EQ(a.histograms().size(), 2u);
  EXPECT_EQ(a.histogram("hist.a").count(), 1);
  EXPECT_EQ(a.histogram("hist.b").count(), 1);
  // Untouched names read as zero without being created.
  EXPECT_EQ(a.counter_value("never.touched"), 0);
}

TEST(MetricsRegistry, ToStringRendersCountersThenHistograms) {
  MetricsRegistry m;
  EXPECT_EQ(m.to_string(), "");  // empty registry renders as nothing

  m.counter("scheduler.steps") = 42;
  m.counter("scheduler.decides") = 4;
  m.histogram("scheduler.delivery_delay").add(3);
  m.histogram("scheduler.delivery_delay").add(5);
  const std::string s = m.to_string();
  // Counters are one `name = value` line each, lexicographic order.
  EXPECT_NE(s.find("scheduler.decides = 4\n"), std::string::npos);
  EXPECT_NE(s.find("scheduler.steps = 42\n"), std::string::npos);
  EXPECT_LT(s.find("scheduler.decides"), s.find("scheduler.steps"));
  // Histogram lines carry the summary stats.
  EXPECT_NE(s.find("scheduler.delivery_delay: count=2 mean=4"),
            std::string::npos);
  EXPECT_NE(s.find("min=3 max=5"), std::string::npos);
}

}  // namespace
}  // namespace nucon::trace
