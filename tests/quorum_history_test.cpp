// Unit tests for the distrust machinery (paper Fig. 5, Lemmas 6.20-6.22).
#include "core/quorum_history.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

TEST(QuorumHistory, StartsEmpty) {
  const QuorumHistory h(4);
  for (Pid q = 0; q < 4; ++q) EXPECT_TRUE(h.of(q).empty());
  EXPECT_EQ(h.size(), 0u);
}

TEST(QuorumHistory, InsertDeduplicates) {
  QuorumHistory h(3);
  h.insert(1, ProcessSet{0, 1});
  h.insert(1, ProcessSet{0, 1});
  h.insert(1, ProcessSet{1, 2});
  EXPECT_EQ(h.of(1).size(), 2u);
  EXPECT_TRUE(h.knows(1, ProcessSet{0, 1}));
  EXPECT_TRUE(h.knows(1, ProcessSet{1, 2}));
  EXPECT_FALSE(h.knows(1, ProcessSet{0, 2}));
  EXPECT_FALSE(h.knows(0, ProcessSet{0, 1}));
}

TEST(QuorumHistory, ImportIsPointwiseUnion) {
  QuorumHistory a(3);
  a.insert(0, ProcessSet{0});
  QuorumHistory b(3);
  b.insert(0, ProcessSet{0, 1});
  b.insert(2, ProcessSet{2});
  a.import(b);
  EXPECT_EQ(a.of(0).size(), 2u);
  EXPECT_TRUE(a.knows(2, ProcessSet{2}));
  // Import is idempotent.
  a.import(b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(QuorumHistory, ConsideredFaultyNeedsOwnQuorumDisjointness) {
  QuorumHistory h(4);
  h.insert(0, ProcessSet{0, 1});  // own quorum of process 0
  h.insert(3, ProcessSet{2, 3});  // disjoint from {0,1}
  h.insert(2, ProcessSet{1, 2});  // intersects {0,1}
  const ProcessSet f = h.considered_faulty(0);
  EXPECT_TRUE(f.contains(3));
  EXPECT_FALSE(f.contains(2));
  EXPECT_FALSE(f.contains(0));
}

TEST(QuorumHistory, SelfNeverConsideredFaultyUnderSelfInclusion) {
  // Lemma 6.20: with self-inclusive quorums, p never lands in F_p.
  QuorumHistory h(4);
  h.insert(0, ProcessSet{0, 1});
  h.insert(0, ProcessSet{0, 2});
  h.insert(0, ProcessSet{0, 3});
  EXPECT_FALSE(h.considered_faulty(0).contains(0));
}

TEST(QuorumHistory, DistrustOfConsideredFaulty) {
  // Lemma 6.22: q in F_p implies p distrusts q (witnessed by r = p, which
  // is not in F_p).
  QuorumHistory h(4);
  h.insert(0, ProcessSet{0, 1});
  h.insert(3, ProcessSet{2, 3});
  EXPECT_TRUE(h.considered_faulty(0).contains(3));
  EXPECT_TRUE(h.distrusts(0, 3));
}

TEST(QuorumHistory, DistrustViaThirdParty) {
  // p's own quorums intersect everyone, but two OTHER processes conflict:
  // p distrusts each of them (neither is in F_p, so each witnesses against
  // the other).
  QuorumHistory h(4);
  h.insert(0, ProcessSet{0, 1, 2, 3});  // own quorum: intersects all
  h.insert(1, ProcessSet{0, 1});
  h.insert(2, ProcessSet{2, 3});
  EXPECT_TRUE(h.considered_faulty(0).empty());
  EXPECT_TRUE(h.distrusts(0, 1));
  EXPECT_TRUE(h.distrusts(0, 2));
}

TEST(QuorumHistory, ConsideredFaultyWitnessDoesNotCountForDistrust) {
  // The conflict {2,3} vs {0,1} exists, but 3 is already in F_0 (its
  // quorum misses 0's own), so 3 cannot serve as the trusted witness r
  // against process 1: distrust needs a conflict with some r NOT in F_p.
  QuorumHistory h(4);
  h.insert(0, ProcessSet{0, 1});
  h.insert(3, ProcessSet{2, 3});
  h.insert(1, ProcessSet{0, 1});
  EXPECT_TRUE(h.distrusts(0, 3));
  EXPECT_FALSE(h.distrusts(0, 1));
}

TEST(QuorumHistory, NoDistrustWhenAllIntersect) {
  QuorumHistory h(3);
  h.insert(0, ProcessSet{0, 1});
  h.insert(1, ProcessSet{1, 2});
  h.insert(2, ProcessSet{0, 2});
  for (Pid q = 0; q < 3; ++q) EXPECT_FALSE(h.distrusts(0, q)) << q;
}

TEST(QuorumHistory, DistrustIsMonotone) {
  // Observation 6.10/6.11: quorums are only added, so distrust never
  // reverts.
  QuorumHistory h(4);
  h.insert(0, ProcessSet{0, 1});
  EXPECT_FALSE(h.distrusts(0, 3));
  h.insert(3, ProcessSet{2, 3});
  EXPECT_TRUE(h.distrusts(0, 3));
  h.insert(3, ProcessSet{0, 1, 2, 3});  // a later benign quorum
  EXPECT_TRUE(h.distrusts(0, 3));       // the old conflict still stands
}

TEST(QuorumHistory, EncodeDecodeRoundTrip) {
  QuorumHistory h(5);
  h.insert(0, ProcessSet{0, 1});
  h.insert(3, ProcessSet{2, 3, 4});
  h.insert(3, ProcessSet{3});
  ByteWriter w;
  h.encode(w);
  const Bytes buf = w.take();
  ByteReader r(buf);
  const auto got = QuorumHistory::decode(r);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->n(), 5);
  EXPECT_EQ(got->size(), 3u);
  EXPECT_TRUE(got->knows(0, ProcessSet{0, 1}));
  EXPECT_TRUE(got->knows(3, ProcessSet{2, 3, 4}));
  EXPECT_TRUE(got->knows(3, ProcessSet{3}));
  EXPECT_TRUE(r.done());
}

TEST(QuorumHistory, DecodeRejectsTruncated) {
  QuorumHistory h(3);
  h.insert(0, ProcessSet{0});
  ByteWriter w;
  h.encode(w);
  Bytes buf = w.take();
  buf.pop_back();
  ByteReader r(buf);
  EXPECT_FALSE(QuorumHistory::decode(r));
}

TEST(QuorumHistory, EmptyQuorumConflictsWithEverything) {
  // An empty quorum in someone's history is disjoint from every quorum,
  // including one's own: its owner is considered faulty.
  QuorumHistory h(3);
  h.insert(0, ProcessSet{0});
  h.insert(1, ProcessSet{});
  EXPECT_TRUE(h.considered_faulty(0).contains(1));
  EXPECT_TRUE(h.distrusts(0, 1));
}

}  // namespace
}  // namespace nucon
