// Ben-Or randomized binary consensus: the oracle-free baseline.
#include "algo/ben_or.hpp"

#include <gtest/gtest.h>

#include "consensus_test_util.hpp"
#include "fd/scripted.hpp"

namespace nucon {
namespace {

ScriptedOracle no_fd() {
  return ScriptedOracle([](Pid, Time) { return FdValue{}; });
}

using testutil::SweepParam;

class BenOrSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(BenOrSweep, SolvesUniformBinaryConsensusWithMajority) {
  const auto [n, faults, seed] = GetParam();
  const Pid t = static_cast<Pid>((n - 1) / 2);
  ASSERT_LE(faults, t);
  const FailurePattern fp = testutil::sweep_pattern({n, faults, seed}, 120);

  auto oracle = no_fd();
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 300'000;
  const auto stats = run_consensus(fp, oracle, make_ben_or(n, t, seed),
                                   testutil::mixed_proposals(n), opts);

  EXPECT_TRUE(stats.all_correct_decided) << fp.to_string();
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

std::vector<SweepParam> ben_or_params() {
  std::vector<SweepParam> out;
  for (Pid n : {3, 4, 5, 7}) {
    for (Pid faults = 0; 2 * faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BenOrSweep, testing::ValuesIn(ben_or_params()),
                         testutil::sweep_name);

TEST(BenOr, UnanimousInputsDecideWithoutCoins) {
  // With unanimous proposals, round 1 already has a majority value: no
  // coin is ever flipped and everyone decides that value.
  const FailurePattern fp(5);
  auto oracle = no_fd();
  SchedulerOptions opts;
  opts.seed = 4;
  opts.max_steps = 60'000;
  SimResult sim = simulate_consensus(fp, oracle, make_ben_or(5, 2, 4),
                                     {1, 1, 1, 1, 1}, opts);
  for (Pid p = 0; p < 5; ++p) {
    const auto* b = static_cast<const BenOr*>(
        sim.automata[static_cast<std::size_t>(p)].get());
    EXPECT_EQ(b->decision(), 1) << p;
    EXPECT_EQ(b->coin_flips(), 0) << p;
  }
}

TEST(BenOr, MixedInputsUseCoinsButStillAgree) {
  int total_decided = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FailurePattern fp(4);
    auto oracle = no_fd();
    SchedulerOptions opts;
    opts.seed = seed;
    opts.max_steps = 300'000;
    const auto stats = run_consensus(fp, oracle, make_ben_or(4, 1, seed),
                                     {0, 1, 0, 1}, opts);
    EXPECT_TRUE(stats.verdict.uniform_agreement) << stats.verdict.detail;
    EXPECT_TRUE(stats.verdict.validity) << stats.verdict.detail;
    total_decided += stats.all_correct_decided;
  }
  // Termination is probability-1, not certain; with a 300k-step budget it
  // should essentially always land.
  EXPECT_GE(total_decided, 9);
}

TEST(BenOr, SafetyWhileBlockedWithoutMajority) {
  FailurePattern fp(5);
  fp.set_crash(2, 10);
  fp.set_crash(3, 10);
  fp.set_crash(4, 10);
  auto oracle = no_fd();
  SchedulerOptions opts;
  opts.seed = 6;
  opts.max_steps = 40'000;
  const auto stats = run_consensus(fp, oracle, make_ben_or(5, 2, 6),
                                   testutil::mixed_proposals(5), opts);
  EXPECT_FALSE(stats.all_correct_decided);  // stalls: < n-t alive
  EXPECT_TRUE(stats.verdict.uniform_agreement);
}

}  // namespace
}  // namespace nucon
