#include "sim/message.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

Message make_msg(Pid from, std::uint64_t seq, Pid to, Time sent_at) {
  Message m;
  m.id = MsgId{from, seq};
  m.to = to;
  m.sent_at = sent_at;
  m.payload = Bytes{static_cast<std::uint8_t>(seq)};
  return m;
}

TEST(MessageBuffer, StartsEmpty) {
  MessageBuffer b;
  EXPECT_EQ(b.total_pending(), 0u);
  EXPECT_EQ(b.pending_for(0), 0u);
  EXPECT_FALSE(b.oldest_sent_at(0));
}

TEST(MessageBuffer, AddAndPeekFifoPerDestination) {
  MessageBuffer b;
  b.add(make_msg(0, 1, 2, 10));
  b.add(make_msg(1, 1, 2, 11));
  b.add(make_msg(0, 2, 3, 12));

  EXPECT_EQ(b.total_pending(), 3u);
  EXPECT_EQ(b.pending_for(2), 2u);
  EXPECT_EQ(b.pending_for(3), 1u);
  EXPECT_EQ(b.peek(2, 0).id, (MsgId{0, 1}));
  EXPECT_EQ(b.peek(2, 1).id, (MsgId{1, 1}));
}

TEST(MessageBuffer, TakeRemoves) {
  MessageBuffer b;
  b.add(make_msg(0, 1, 1, 5));
  b.add(make_msg(0, 2, 1, 6));
  const Message m = b.take(1, 0);
  EXPECT_EQ(m.id.seq, 1u);
  EXPECT_EQ(b.pending_for(1), 1u);
  EXPECT_EQ(b.total_pending(), 1u);
  EXPECT_EQ(b.peek(1, 0).id.seq, 2u);
}

TEST(MessageBuffer, TakeMiddle) {
  MessageBuffer b;
  for (std::uint64_t s = 1; s <= 3; ++s) b.add(make_msg(0, s, 1, 0));
  const Message m = b.take(1, 1);
  EXPECT_EQ(m.id.seq, 2u);
  EXPECT_EQ(b.peek(1, 0).id.seq, 1u);
  EXPECT_EQ(b.peek(1, 1).id.seq, 3u);
}

TEST(MessageBuffer, TakeByIdFindsAnywhere) {
  MessageBuffer b;
  b.add(make_msg(0, 1, 1, 0));
  b.add(make_msg(2, 7, 1, 0));
  const auto m = b.take_by_id(1, MsgId{2, 7});
  ASSERT_TRUE(m);
  EXPECT_EQ(m->id, (MsgId{2, 7}));
  EXPECT_EQ(b.pending_for(1), 1u);
}

TEST(MessageBuffer, TakeByIdMissing) {
  MessageBuffer b;
  b.add(make_msg(0, 1, 1, 0));
  EXPECT_FALSE(b.take_by_id(1, MsgId{0, 99}));
  EXPECT_FALSE(b.take_by_id(2, MsgId{0, 1}));  // wrong destination
  EXPECT_EQ(b.total_pending(), 1u);
}

TEST(MessageBuffer, OldestSentAt) {
  // Send times are nondecreasing per destination queue (the simulation
  // clock only moves forward), so the oldest send time is the front's —
  // O(1), no scan of the queue.
  MessageBuffer b;
  b.add(make_msg(0, 1, 1, 10));
  b.add(make_msg(0, 2, 1, 20));
  b.add(make_msg(0, 3, 1, 20));
  EXPECT_EQ(b.oldest_sent_at(1), 10);
  (void)b.take(1, 0);
  EXPECT_EQ(b.oldest_sent_at(1), 20);
  (void)b.take(1, 0);
  (void)b.take(1, 0);
  EXPECT_FALSE(b.oldest_sent_at(1));
}

TEST(MessageBuffer, PayloadPreserved) {
  MessageBuffer b;
  Message m = make_msg(3, 9, 0, 1);
  m.payload = Bytes{1, 2, 3, 4};
  b.add(std::move(m));
  EXPECT_EQ(b.take(0, 0).payload, (Bytes{1, 2, 3, 4}));
}

TEST(MessageBuffer, SharedPayloadAcrossDestinations) {
  // One broadcast payload queued for three destinations: the buffer holds
  // refcount shares of a single sealed buffer, never deep copies, and
  // every removal hands back the same underlying bytes.
  ByteWriter w;
  w.str("broadcast");
  const SharedBytes payload(w.buffer());  // the one sealed copy
  const PayloadCounters before = SharedBytes::counters();

  MessageBuffer b;
  for (Pid to = 0; to < 3; ++to) {
    Message m;
    m.id = MsgId{3, static_cast<std::uint64_t>(to) + 1};
    m.to = to;
    m.sent_at = 5 + to;
    m.payload = payload;
    b.add(std::move(m));
  }
  const PayloadCounters c = SharedBytes::counters() - before;
  EXPECT_EQ(c.copied_bytes, 0u);  // fan-out is shares, not copies
  EXPECT_GE(c.shares, 3u);

  EXPECT_EQ(b.total_pending(), 3u);
  EXPECT_EQ(b.oldest_sent_at(1), 6);
  const Message m0 = b.take(0, 0);
  EXPECT_EQ(m0.payload.raw(), payload.raw());  // buffer identity preserved
  const auto m2 = b.take_by_id(2, MsgId{3, 3});
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->payload.raw(), payload.raw());
  EXPECT_EQ(m2->payload, payload);
  EXPECT_EQ(b.pending_for(1), 1u);
  EXPECT_EQ(b.take(1, 0).sent_at, 6);
}

}  // namespace
}  // namespace nucon
