// Tests of the DAG-of-samples structure: the vector-clock edge relation,
// prefix-closure, merging, serialization, and chain extraction
// (paper §4.1, Observations 4.1-4.2).
#include "dag/sample_dag.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

FdValue q(std::initializer_list<Pid> pids) {
  return FdValue::of_quorum(ProcessSet(pids));
}

TEST(SampleDag, EmptyDag) {
  const SampleDag dag(3);
  EXPECT_EQ(dag.total_nodes(), 0u);
  EXPECT_EQ(dag.total_edges(), 0u);
  EXPECT_EQ(dag.count_of(0), 0u);
  EXPECT_FALSE(dag.contains(NodeRef{0, 1}));
}

TEST(SampleDag, TakeSampleAppendsToOwnChain) {
  SampleDag dag(3);
  const NodeRef v1 = dag.take_sample(0, q({0}));
  EXPECT_EQ(v1, (NodeRef{0, 1}));
  const NodeRef v2 = dag.take_sample(0, q({0, 1}));
  EXPECT_EQ(v2, (NodeRef{0, 2}));
  EXPECT_EQ(dag.count_of(0), 2u);
  EXPECT_EQ(dag.node(v1).d, q({0}));
  EXPECT_EQ(dag.node(v2).d, q({0, 1}));
}

TEST(SampleDag, OwnSamplesFormAChain) {
  // Observation 4.2: later own samples are descendants of earlier ones.
  SampleDag dag(2);
  const NodeRef a = dag.take_sample(0, q({0}));
  const NodeRef b = dag.take_sample(0, q({0}));
  const NodeRef c = dag.take_sample(0, q({0}));
  EXPECT_TRUE(dag.has_edge(a, b));
  EXPECT_TRUE(dag.has_edge(b, c));
  EXPECT_TRUE(dag.has_edge(a, c));  // reachability = edge in this encoding
  EXPECT_FALSE(dag.has_edge(c, a));
  EXPECT_FALSE(dag.has_edge(b, a));
}

TEST(SampleDag, EdgesFromEveryKnownNode) {
  SampleDag dag(3);
  const NodeRef a = dag.take_sample(0, q({0}));
  const NodeRef b = dag.take_sample(1, q({1}));
  const NodeRef c = dag.take_sample(2, q({2}));
  EXPECT_TRUE(dag.has_edge(a, c));
  EXPECT_TRUE(dag.has_edge(b, c));
  EXPECT_TRUE(dag.has_edge(a, b));
  EXPECT_FALSE(dag.has_edge(c, a));
}

TEST(SampleDag, ConcurrentSamplesHaveNoEdge) {
  // Two processes sampling in different replicas, before any gossip.
  SampleDag dag_p(2);
  SampleDag dag_q(2);
  const NodeRef vp = dag_p.take_sample(0, q({0}));
  const NodeRef vq = dag_q.take_sample(1, q({1}));
  dag_p.merge_from(dag_q);
  EXPECT_TRUE(dag_p.contains(vp));
  EXPECT_TRUE(dag_p.contains(vq));
  EXPECT_FALSE(dag_p.has_edge(vp, vq));
  EXPECT_FALSE(dag_p.has_edge(vq, vp));
}

TEST(SampleDag, MergePreservesNodeData) {
  SampleDag a(2);
  a.take_sample(0, q({0}));
  SampleDag b(2);
  b.merge_from(a);
  EXPECT_EQ(b.node(NodeRef{0, 1}).d, q({0}));
  // Merging is idempotent and monotone (Observation 4.1).
  b.merge_from(a);
  EXPECT_EQ(b.total_nodes(), 1u);
}

TEST(SampleDag, GossipTransfersEdges) {
  SampleDag a(2);
  const NodeRef v1 = a.take_sample(0, q({0}));
  SampleDag b(2);
  b.merge_from(a);
  const NodeRef v2 = b.take_sample(1, q({1}));  // sees v1
  a.merge_from(b);
  EXPECT_TRUE(a.has_edge(v1, v2));
  const NodeRef v3 = a.take_sample(0, q({0}));
  EXPECT_TRUE(a.has_edge(v2, v3));
}

TEST(SampleDag, SerializeRoundTrip) {
  SampleDag a(3);
  a.take_sample(0, q({0, 1}));
  a.take_sample(1, q({1}));
  a.take_sample(0, q({0}));
  const auto decoded = SampleDag::deserialize(a.serialize());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->n(), 3);
  EXPECT_EQ(decoded->total_nodes(), 3u);
  EXPECT_EQ(decoded->total_edges(), a.total_edges());
  EXPECT_EQ(decoded->node(NodeRef{0, 2}).d, q({0}));
  EXPECT_EQ(decoded->node(NodeRef{0, 2}).vc, a.node(NodeRef{0, 2}).vc);
}

TEST(SampleDag, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SampleDag::deserialize(Bytes{}));
  EXPECT_FALSE(SampleDag::deserialize(Bytes{0xFF, 0xFF, 0xFF}));
  SampleDag a(2);
  a.take_sample(0, q({0}));
  Bytes buf = a.serialize();
  buf.pop_back();
  EXPECT_FALSE(SampleDag::deserialize(buf));
}

TEST(SampleDag, ConeContainsOnlyDescendants) {
  SampleDag dag(3);
  const NodeRef a = dag.take_sample(0, q({0}));
  const NodeRef b = dag.take_sample(1, q({1}));
  const NodeRef c = dag.take_sample(2, q({2}));
  const NodeRef d = dag.take_sample(0, q({0}));

  const auto cone = dag.cone_topo(b);
  EXPECT_EQ(cone.size(), 3u);  // b, c, d — not a
  EXPECT_EQ(cone.front(), b);
  for (const NodeRef& v : cone) {
    EXPECT_TRUE(dag.in_cone(b, v));
    EXPECT_NE(v, a);
  }
  (void)c;
  (void)d;
}

TEST(SampleDag, ConeToposortRespectsEdges) {
  SampleDag dag(3);
  for (int i = 0; i < 5; ++i) {
    dag.take_sample(static_cast<Pid>(i % 3), q({static_cast<Pid>(i % 3)}));
  }
  const NodeRef root{0, 1};
  const auto order = dag.cone_topo(root);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_FALSE(dag.has_edge(order[j], order[i]))
          << "edge goes backwards in topo order";
    }
  }
}

TEST(SampleDag, GreedyChainIsARealPath) {
  SampleDag dag(3);
  for (int i = 0; i < 9; ++i) {
    dag.take_sample(static_cast<Pid>(i % 3), q({static_cast<Pid>(i % 3)}));
  }
  const NodeRef root{0, 1};
  const auto chain = dag.greedy_chain(root);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.front(), root);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    EXPECT_TRUE(dag.has_edge(chain[i], chain[i + 1]))
        << "consecutive chain nodes must be DAG edges";
  }
}

TEST(SampleDag, GreedyChainOnLinearHistoryIsEverything) {
  // One process only: the chain must include every node.
  SampleDag dag(2);
  for (int i = 0; i < 6; ++i) dag.take_sample(0, q({0}));
  EXPECT_EQ(dag.greedy_chain(NodeRef{0, 1}).size(), 6u);
  EXPECT_EQ(dag.greedy_chain(NodeRef{0, 4}).size(), 3u);
}

TEST(SampleDag, TotalEdgesCountsPredecessors) {
  SampleDag dag(2);
  dag.take_sample(0, q({0}));  // 0 preds
  dag.take_sample(0, q({0}));  // 1 pred
  dag.take_sample(1, q({1}));  // 2 preds
  EXPECT_EQ(dag.total_edges(), 3u);
}

TEST(SampleDag, FrontierMatchesCounts) {
  SampleDag dag(3);
  dag.take_sample(2, q({2}));
  dag.take_sample(2, q({2}));
  dag.take_sample(0, q({0}));
  const auto f = dag.frontier();
  EXPECT_EQ(f, (std::vector<std::uint32_t>{1, 0, 2}));
}

}  // namespace
}  // namespace nucon
