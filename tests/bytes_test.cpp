#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace nucon {
namespace {

TEST(Bytes, UvarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t values[] = {0,    1,    127,  128,   16384,
                                  1u << 20, std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) w.uvarint(v);
  const Bytes data = w.take();

  ByteReader r(data);
  for (std::uint64_t v : values) {
    const auto got = r.uvarint();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.done());
}

TEST(Bytes, SvarintRoundTrip) {
  ByteWriter w;
  const std::int64_t values[] = {0, 1, -1, 63, -64, 1 << 20, -(1 << 20),
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (std::int64_t v : values) w.svarint(v);
  const Bytes buf = w.take();
  ByteReader r(buf);
  for (std::int64_t v : values) {
    const auto got = r.svarint();
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, v);
  }
}

TEST(Bytes, SmallValuesAreCompact) {
  ByteWriter w;
  w.uvarint(5);
  EXPECT_EQ(w.size(), 1u);
  w.uvarint(300);
  EXPECT_EQ(w.size(), 3u);
}

TEST(Bytes, U64RoundTrip) {
  ByteWriter w;
  w.u64(0xdeadbeefcafef00dULL);
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafef00dULL);
}

TEST(Bytes, PidRoundTrip) {
  ByteWriter w;
  w.pid(0);
  w.pid(63);
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.pid(), 0);
  EXPECT_EQ(r.pid(), 63);
}

TEST(Bytes, PidRejectsOutOfRange) {
  // The cap is kMaxProcesses (1024 since the wide-ProcessSet change): 64
  // is a valid pid now, kMaxProcesses itself is not. Width-specific
  // bounds (pid < n) are the callers' job — see FdValue::decode(r, n).
  ByteWriter w;
  w.svarint(64);
  const Bytes buf1 = w.take();
  ByteReader r1(buf1);
  EXPECT_EQ(r1.pid(), 64);

  ByteWriter w1;
  w1.svarint(kMaxProcesses);
  const Bytes buf1b = w1.take();
  ByteReader r1b(buf1b);
  EXPECT_FALSE(r1b.pid());

  ByteWriter w2;
  w2.svarint(-1);
  const Bytes buf2 = w2.take();
  ByteReader r2(buf2);
  EXPECT_FALSE(r2.pid());
}

TEST(Bytes, ProcessSetRoundTrip) {
  ByteWriter w;
  const ProcessSet s{0, 5, 63};
  w.process_set(s);
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.process_set(), s);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, NestedBytesRoundTrip) {
  ByteWriter inner;
  inner.uvarint(7);
  ByteWriter w;
  w.bytes(inner.take());
  const Bytes buf = w.take();
  ByteReader r(buf);
  const auto blob = r.bytes();
  ASSERT_TRUE(blob);
  ByteReader ri(*blob);
  EXPECT_EQ(ri.uvarint(), 7u);
}

TEST(Bytes, TruncatedReadsFail) {
  ByteWriter w;
  w.u64(1234);
  Bytes data = w.take();
  data.resize(4);
  ByteReader r(data);
  EXPECT_FALSE(r.u64());
}

TEST(Bytes, TruncatedVarintFails) {
  Bytes data = {0x80, 0x80};  // continuation bits with no terminator
  ByteReader r(data);
  EXPECT_FALSE(r.uvarint());
}

TEST(Bytes, OverlongVarintFails) {
  Bytes data(11, 0x80);  // more than 64 bits of continuation
  ByteReader r(data);
  EXPECT_FALSE(r.uvarint());
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter w;
  w.uvarint(100);  // claims 100 bytes follow; none do
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_FALSE(r.str());
}

TEST(Bytes, HugeDeclaredLengthFails) {
  // Regression: a declared length near 2^64 used to wrap the `pos_ + len`
  // bounds check and pass it, turning a malformed message into an
  // out-of-bounds read. The reader must compare against remaining space.
  ByteWriter w;
  w.uvarint(std::numeric_limits<std::uint64_t>::max());
  w.u8('x');
  const Bytes buf = w.take();
  ByteReader rs(buf);
  EXPECT_FALSE(rs.str());
  ByteReader rb(buf);
  EXPECT_FALSE(rb.bytes());
}

TEST(Bytes, DeclaredLengthJustPastEndFails) {
  ByteWriter w;
  w.uvarint(4);  // claims 4 payload bytes; only 3 follow
  w.u8(1);
  w.u8(2);
  w.u8(3);
  const Bytes buf = w.take();
  ByteReader rb(buf);
  EXPECT_FALSE(rb.bytes());
  ByteReader rs(buf);
  EXPECT_FALSE(rs.str());
}

TEST(Bytes, WriterResetReuse) {
  ByteWriter w;
  w.uvarint(300);
  w.str("abc");
  const Bytes first = w.buffer();
  EXPECT_EQ(first.size(), w.size());

  w.reset();
  EXPECT_EQ(w.size(), 0u);
  w.uvarint(300);
  w.str("abc");
  EXPECT_EQ(w.buffer(), first);  // reuse reproduces the encoding exactly
}

TEST(Bytes, WriterRawAppendsVerbatim) {
  ByteWriter inner;
  inner.u8(0xaa);
  inner.u8(0xbb);
  ByteWriter w;
  w.raw(inner.buffer());
  EXPECT_EQ(w.buffer(), (Bytes{0xaa, 0xbb}));  // no length prefix
}

TEST(Bytes, EmptyReaderIsDone) {
  Bytes empty;
  ByteReader r(empty);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.u8());
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  const Bytes buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 2u);
  (void)r.u8();
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace nucon
