// T_{Sigma^nu -> Sigma^nu+} (paper Fig. 3, Theorem 6.7): the emulated
// output history must satisfy all four Sigma^nu+ properties whenever the
// input samples come from a legal Sigma^nu oracle — including fully
// adversarial faulty behavior.
#include "core/sigma_nu_to_plus.hpp"

#include <gtest/gtest.h>

#include "consensus_test_util.hpp"
#include "fd/history.hpp"

namespace nucon {
namespace {

using testutil::SweepParam;

constexpr Time kStabilize = 60;

struct BoostOutcome {
  RecordedHistory emulated;
  std::vector<std::int64_t> outputs_per_process;
};

BoostOutcome run_boost(const FailurePattern& fp, std::uint64_t seed,
                       FaultyQuorumBehavior behavior, std::int64_t steps) {
  SigmaNuOptions so;
  so.stabilize_at = kStabilize;
  so.seed = seed;
  so.faulty = behavior;
  SigmaNuOracle oracle(fp, so);

  BoostOutcome outcome;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  opts = with_emulation_recording(std::move(opts), outcome.emulated);

  const SimResult sim =
      simulate(fp, oracle, make_sigma_nu_to_plus(fp.n()), opts);
  for (Pid p = 0; p < fp.n(); ++p) {
    outcome.outputs_per_process.push_back(
        static_cast<const SigmaNuToPlus*>(
            sim.automata[static_cast<std::size_t>(p)].get())
            ->outputs_produced());
  }
  return outcome;
}

class BoostSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(BoostSweep, EmulatedHistoryIsInSigmaNuPlus) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 15);
  const BoostOutcome outcome = run_boost(
      fp, GetParam().seed, FaultyQuorumBehavior::kAdversarialDisjoint, 2500);

  ASSERT_FALSE(outcome.emulated.empty());
  const auto result = check_sigma_nu_plus(outcome.emulated, fp);
  EXPECT_TRUE(result.ok) << result.detail << " under " << fp.to_string();
}

TEST_P(BoostSweep, CorrectProcessesKeepProducingQuorums) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 15);
  const BoostOutcome outcome =
      run_boost(fp, GetParam().seed + 77, FaultyQuorumBehavior::kBenign, 2500);
  for (Pid p : fp.correct()) {
    EXPECT_GT(outcome.outputs_per_process[static_cast<std::size_t>(p)], 3)
        << "process " << p << " under " << fp.to_string();
  }
}

std::vector<SweepParam> boost_params() {
  std::vector<SweepParam> out;
  for (Pid n : {2, 3, 4, 5}) {
    for (Pid faults = 0; faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoostSweep, testing::ValuesIn(boost_params()),
                         testutil::sweep_name);

TEST(Boost, OutputsAreSelfInclusiveFromTheStart) {
  // Self-inclusion must hold for EVERY emitted value including the initial
  // Pi, at every process, at every time — check the raw record.
  const FailurePattern fp(4);
  const BoostOutcome outcome =
      run_boost(fp, 5, FaultyQuorumBehavior::kAdversarialDisjoint, 1500);
  for (const Sample& s : outcome.emulated.samples()) {
    EXPECT_TRUE(s.value.quorum().contains(s.p));
  }
}

TEST(Boost, EventualOutputsShrinkToCorrect) {
  FailurePattern fp(4);
  fp.set_crash(3, 30);
  const BoostOutcome outcome =
      run_boost(fp, 6, FaultyQuorumBehavior::kAdversarialDisjoint, 3000);
  // The LAST emitted quorum of each correct process contains only correct
  // processes (completeness, witnessed concretely).
  for (Pid p : fp.correct()) {
    const auto samples = outcome.emulated.of(p);
    ASSERT_FALSE(samples.empty());
    EXPECT_TRUE(samples.back().value.quorum().is_subset_of(fp.correct()))
        << samples.back().value.quorum().to_string();
  }
}

TEST(Boost, InitialOutputIsPi) {
  SigmaNuToPlus a(2, 5);
  EXPECT_EQ(a.emulated_output().quorum(), ProcessSet::full(5));
}

}  // namespace
}  // namespace nucon
