// Theorem 7.1, IF direction: with t < n/2, Sigma is implementable from
// scratch (no failure detector at all).
#include "core/sigma_from_majority.hpp"

#include <gtest/gtest.h>

#include "fd/history.hpp"
#include "fd/scripted.hpp"

namespace nucon {
namespace {

struct MajorityOutcome {
  RecordedHistory emulated;
  std::vector<int> rounds;
};

MajorityOutcome run_majority_sigma(const FailurePattern& fp, Pid t,
                                   std::uint64_t seed, std::int64_t steps) {
  ScriptedOracle no_fd([](Pid, Time) { return FdValue{}; });

  MajorityOutcome outcome;
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  opts = with_emulation_recording(std::move(opts), outcome.emulated);

  const SimResult sim =
      simulate(fp, no_fd, make_sigma_from_majority(fp.n(), t), opts);
  for (Pid p = 0; p < fp.n(); ++p) {
    outcome.rounds.push_back(static_cast<const SigmaFromMajority*>(
                                 sim.automata[static_cast<std::size_t>(p)].get())
                                 ->round());
  }
  return outcome;
}

struct MajorityParam {
  Pid n;
  Pid t;
  Pid faults;
  std::uint64_t seed;
};

class MajoritySweep : public testing::TestWithParam<MajorityParam> {};

TEST_P(MajoritySweep, EmulatedHistoryIsInSigma) {
  const auto [n, t, faults, seed] = GetParam();
  ASSERT_LT(2 * t, n);  // the theorem's precondition
  Rng rng(seed * 31 + 7);
  FailurePattern fp = Environment{n, t}.sample(rng, faults, 30);

  const MajorityOutcome outcome = run_majority_sigma(fp, t, seed, 4000);
  ASSERT_FALSE(outcome.emulated.empty());
  const auto result = check_sigma(outcome.emulated, fp);
  EXPECT_TRUE(result.ok) << result.detail << " under " << fp.to_string();
  // And a fortiori Sigma^nu.
  EXPECT_TRUE(check_sigma_nu(outcome.emulated, fp).ok);
}

TEST_P(MajoritySweep, AllQuorumsAreMajorities) {
  const auto [n, t, faults, seed] = GetParam();
  Rng rng(seed * 131 + 3);
  FailurePattern fp = Environment{n, t}.sample(rng, faults, 30);

  const MajorityOutcome outcome = run_majority_sigma(fp, t, seed, 3000);
  for (const Sample& s : outcome.emulated.samples()) {
    // Initial Pi or an (n - t)-sized set; both are majorities when t < n/2.
    EXPECT_TRUE(is_majority(s.value.quorum(), n))
        << s.value.quorum().to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MajoritySweep,
    testing::Values(MajorityParam{3, 1, 0, 1}, MajorityParam{3, 1, 1, 1},
                    MajorityParam{5, 2, 0, 1}, MajorityParam{5, 2, 1, 2},
                    MajorityParam{5, 2, 2, 3}, MajorityParam{7, 3, 3, 1},
                    MajorityParam{7, 2, 2, 2}, MajorityParam{4, 1, 1, 4}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_t" +
             std::to_string(info.param.t) + "_f" +
             std::to_string(info.param.faults) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(SigmaFromMajority, RoundsKeepAdvancing) {
  FailurePattern fp(5);
  fp.set_crash(4, 20);
  const MajorityOutcome outcome = run_majority_sigma(fp, 2, 9, 4000);
  for (Pid p : fp.correct()) {
    EXPECT_GT(outcome.rounds[static_cast<std::size_t>(p)], 20) << p;
  }
}

TEST(SigmaFromMajority, BlocksWhenMajorityCrashes) {
  // Outside the precondition (here 3 of 5 crash with t = 2 — i.e. the
  // environment lied), rounds stall once fewer than n - t processes are
  // alive: the from-scratch implementation cannot make progress, which is
  // the liveness shadow of Theorem 7.1's ONLY-IF direction.
  FailurePattern fp(5);
  fp.set_crash(2, 40);
  fp.set_crash(3, 40);
  fp.set_crash(4, 40);
  const MajorityOutcome outcome = run_majority_sigma(fp, 2, 10, 4000);

  // Rounds reached are bounded by what completed before the crashes.
  for (Pid p : fp.correct()) {
    EXPECT_LT(outcome.rounds[static_cast<std::size_t>(p)], 60) << p;
  }
  // Consequently completeness fails: late quorums still contain crashed
  // processes.
  EXPECT_FALSE(check_sigma(outcome.emulated, fp).ok);
}

TEST(SigmaFromMajority, IgnoresFailureDetectorInput) {
  // "From scratch" means the FD value is never consulted: two runs with
  // wildly different oracles but the same seed emit identical histories.
  const FailurePattern fp(3);
  ScriptedOracle weird([](Pid p, Time t) {
    return FdValue::of_quorum(ProcessSet::single(static_cast<Pid>((p + t) % 3)));
  });
  RecordedHistory h1;
  SchedulerOptions opts;
  opts.seed = 77;
  opts.max_steps = 500;
  opts = with_emulation_recording(std::move(opts), h1);
  (void)simulate(fp, weird, make_sigma_from_majority(3, 1), opts);

  const MajorityOutcome plain = run_majority_sigma(fp, 1, 77, 500);
  ASSERT_EQ(h1.samples().size(), plain.emulated.samples().size());
  for (std::size_t i = 0; i < h1.samples().size(); ++i) {
    EXPECT_EQ(h1.samples()[i].value, plain.emulated.samples()[i].value);
  }
}

}  // namespace
}  // namespace nucon
