// Guarding the guards: mutate legal oracle histories with planted
// violations and assert each checker catches them. A checker that accepts
// everything would make every other "history is in class D" test
// meaningless, so these tests are load-bearing.
#include <gtest/gtest.h>

#include "fd/classic.hpp"
#include "fd/history.hpp"
#include "fd/omega.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

constexpr Time kStabilize = 40;
constexpr Time kHorizon = 120;

FailurePattern pattern(Pid n, Pid faults, std::uint64_t seed) {
  Rng rng(seed * 48271);
  return Environment{n, static_cast<Pid>(n - 1)}.sample(rng, faults,
                                                        kStabilize - 10);
}

template <typename OracleT>
RecordedHistory sample_all(const FailurePattern& fp, OracleT& oracle) {
  RecordedHistory h;
  for (Time t = 1; t <= kHorizon; ++t) {
    for (Pid p = 0; p < fp.n(); ++p) {
      if (fp.alive_at(p, t)) h.add(p, t, oracle.value(p, t));
    }
  }
  return h;
}

/// Copies `h` with one sample (by index) replaced.
RecordedHistory mutate(const RecordedHistory& h, std::size_t index,
                       FdValue replacement) {
  RecordedHistory out;
  for (std::size_t i = 0; i < h.samples().size(); ++i) {
    const Sample& s = h.samples()[i];
    out.add(s.p, s.t, i == index ? replacement : s.value);
  }
  return out;
}

/// Index of some post-stabilization sample of a correct process.
std::size_t late_correct_sample(const RecordedHistory& h,
                                const FailurePattern& fp) {
  for (std::size_t i = h.samples().size(); i-- > 0;) {
    const Sample& s = h.samples()[i];
    if (fp.is_correct(s.p) && s.t > kStabilize + 10) return i;
  }
  ADD_FAILURE() << "no late correct sample";
  return 0;
}

struct MutParam {
  Pid n;
  Pid faults;
  std::uint64_t seed;
};

class CheckerMutation : public testing::TestWithParam<MutParam> {};

TEST_P(CheckerMutation, SigmaCatchesPlantedDisjointQuorum) {
  const auto [n, faults, seed] = GetParam();
  const FailurePattern fp = pattern(n, faults, seed);
  SigmaOptions so;
  so.stabilize_at = kStabilize;
  so.seed = seed;
  SigmaOracle oracle(fp, so);
  const RecordedHistory h = sample_all(fp, oracle);
  ASSERT_TRUE(check_sigma(h, fp).ok);

  // Plant a quorum disjoint from the kernel-bearing ones: the complement
  // of the correct set plus nothing — or, when everyone is correct, an
  // empty quorum (disjoint from everything).
  const ProcessSet bad = fp.faulty();
  const auto idx = late_correct_sample(h, fp);
  const RecordedHistory mutated = mutate(h, idx, FdValue::of_quorum(bad));
  EXPECT_FALSE(check_sigma(mutated, fp).ok);
}

TEST_P(CheckerMutation, SigmaNuCatchesPlantedCompletenessViolation) {
  const auto [n, faults, seed] = GetParam();
  const FailurePattern fp = pattern(n, faults, seed);
  if (fp.faulty().empty()) GTEST_SKIP();
  SigmaNuOptions so;
  so.stabilize_at = kStabilize;
  so.seed = seed;
  SigmaNuOracle oracle(fp, so);
  const RecordedHistory h = sample_all(fp, oracle);
  ASSERT_TRUE(check_sigma_nu(h, fp).ok);

  // Make the LAST correct sample include a faulty process: no suffix can
  // witness completeness any more.
  std::size_t last_correct = 0;
  for (std::size_t i = 0; i < h.samples().size(); ++i) {
    if (fp.is_correct(h.samples()[i].p)) last_correct = i;
  }
  FdValue bad = h.samples()[last_correct].value;
  bad.set_quorum(bad.quorum() | ProcessSet::single(fp.faulty().min()));
  const RecordedHistory mutated = mutate(h, last_correct, bad);
  EXPECT_FALSE(check_sigma_nu(mutated, fp).ok);
}

TEST_P(CheckerMutation, SigmaNuPlusCatchesPlantedSelfExclusion) {
  const auto [n, faults, seed] = GetParam();
  if (n < 3) GTEST_SKIP();
  const FailurePattern fp = pattern(n, faults, seed);
  SigmaNuPlusOptions so;
  so.stabilize_at = kStabilize;
  so.seed = seed;
  SigmaNuPlusOracle oracle(fp, so);
  const RecordedHistory h = sample_all(fp, oracle);
  ASSERT_TRUE(check_sigma_nu_plus(h, fp).ok);

  const auto idx = late_correct_sample(h, fp);
  const Pid sampler = h.samples()[idx].p;
  FdValue bad = h.samples()[idx].value;
  ProcessSet q = bad.quorum();
  q.erase(sampler);  // violate self-inclusion
  // Keep the quorum nonempty with a member that is not the sampler.
  q |= ProcessSet::single(static_cast<Pid>((sampler + 1) % n));
  bad.set_quorum(q);
  const RecordedHistory mutated = mutate(h, idx, bad);
  EXPECT_FALSE(check_sigma_nu_plus(mutated, fp).ok);
}

TEST_P(CheckerMutation, OmegaCatchesPlantedLateDefector) {
  const auto [n, faults, seed] = GetParam();
  const FailurePattern fp = pattern(n, faults, seed);
  if (fp.correct().size() < 2) GTEST_SKIP();
  OmegaOptions oo;
  oo.stabilize_at = kStabilize;
  oo.seed = seed;
  OmegaOracle oracle(fp, oo);
  const RecordedHistory h = sample_all(fp, oracle);
  ASSERT_TRUE(check_omega(h, fp).ok);

  // The LAST sample of some correct process trusts a different correct
  // process: no unanimous suffix remains witnessed for every process.
  std::size_t last_correct = 0;
  for (std::size_t i = 0; i < h.samples().size(); ++i) {
    if (fp.is_correct(h.samples()[i].p)) last_correct = i;
  }
  const Pid current = h.samples()[last_correct].value.leader();
  Pid other = -1;
  for (Pid c : fp.correct()) {
    if (c != current) other = c;
  }
  ASSERT_NE(other, -1);
  const RecordedHistory mutated =
      mutate(h, last_correct, FdValue::of_leader(other));
  EXPECT_FALSE(check_omega(mutated, fp).ok);
}

TEST_P(CheckerMutation, PerfectCatchesPlantedPrematureSuspicion) {
  const auto [n, faults, seed] = GetParam();
  const FailurePattern fp = pattern(n, faults, seed);
  if (fp.correct().size() < 2) GTEST_SKIP();
  PerfectOracle oracle(fp);
  const RecordedHistory h = sample_all(fp, oracle);
  ASSERT_TRUE(check_perfect(h, fp).ok);

  const auto idx = late_correct_sample(h, fp);
  // Suspect a correct process: strong accuracy must break.
  const Pid victim = fp.correct().max();
  FdValue bad = h.samples()[idx].value;
  bad.set_suspects(bad.suspects() | ProcessSet::single(victim));
  const RecordedHistory mutated = mutate(h, idx, bad);
  EXPECT_FALSE(check_perfect(mutated, fp).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CheckerMutation,
    testing::Values(MutParam{2, 0, 1}, MutParam{3, 1, 1}, MutParam{4, 1, 2},
                    MutParam{4, 2, 3}, MutParam{5, 2, 1}, MutParam{5, 4, 2},
                    MutParam{7, 3, 1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_f" +
             std::to_string(info.param.faults) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace nucon
