// Replicated state machine over the library's consensus engines: uniform
// engines give all-replica prefix consistency; the nonuniform engine
// (A_nuc) guarantees it only among correct replicas — the operational
// meaning of the uniform/nonuniform distinction for a real system.
#include "smr/replicated_log.hpp"

#include <gtest/gtest.h>

#include "algo/mr_consensus.hpp"
#include "consensus_test_util.hpp"
#include "core/anuc.hpp"

namespace nucon {
namespace {

std::vector<std::vector<Value>> streams(Pid n, int per_process) {
  std::vector<std::vector<Value>> out(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) {
    for (int i = 1; i <= per_process; ++i) {
      out[static_cast<std::size_t>(p)].push_back(make_command(p, i));
    }
  }
  return out;
}

/// Stops once every correct replica has committed every correct client's
/// command (faulty clients' commands are best-effort: they may crash
/// before even announcing them).
SchedulerOptions smr_opts(const FailurePattern& fp,
                          const std::vector<std::vector<Value>>& commands,
                          std::uint64_t seed) {
  std::vector<Value> required;
  for (Pid p : fp.correct()) {
    const auto& stream = commands[static_cast<std::size_t>(p)];
    required.insert(required.end(), stream.begin(), stream.end());
  }

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = 400'000;
  opts.stop_when = [&fp, required](
                       const std::vector<std::unique_ptr<Automaton>>& all) {
    for (Pid p : fp.correct()) {
      const auto* replica = static_cast<const ReplicatedLog*>(
          all[static_cast<std::size_t>(p)].get());
      for (Value c : required) {
        if (!replica->has_committed(c)) return false;
      }
    }
    return true;
  };
  return opts;
}

using SmrParam = testutil::SweepParam;

class SmrUniformSweep : public testing::TestWithParam<SmrParam> {};

TEST_P(SmrUniformSweep, MrSigmaEngineGivesUniformLog) {
  const auto [n, faults, seed] = GetParam();
  const FailurePattern fp = testutil::sweep_pattern({n, faults, seed}, 100);
  auto oracle = testutil::omega_sigma(fp, 120, seed);

  const auto commands = streams(n, 3);
  const SimResult sim =
      simulate(fp, oracle.top(),
               make_replicated_log(n, commands, make_mr_fd_quorum(n)),
               smr_opts(fp, commands, seed));

  ASSERT_TRUE(sim.stopped_by_predicate)
      << "correct replicas did not commit all commands under "
      << fp.to_string();
  const LogVerdict verdict = check_logs(fp, sim.automata, commands);
  EXPECT_TRUE(verdict.correct_prefix_consistent) << verdict.detail;
  EXPECT_TRUE(verdict.all_prefix_consistent) << verdict.detail;
  EXPECT_TRUE(verdict.only_submitted) << verdict.detail;
  EXPECT_TRUE(verdict.no_duplicates) << verdict.detail;

  // Every correct process's commands appear in every correct log.
  for (Pid p : fp.correct()) {
    const auto& log = static_cast<const ReplicatedLog*>(
                          sim.automata[static_cast<std::size_t>(p)].get())
                          ->log();
    for (Pid q : fp.correct()) {
      for (Value c : commands[static_cast<std::size_t>(q)]) {
        EXPECT_NE(std::find(log.begin(), log.end(), c), log.end())
            << "command " << c << " missing from replica " << p;
      }
    }
  }
}

std::vector<SmrParam> smr_params() {
  std::vector<SmrParam> out;
  for (Pid n : {3, 4, 5}) {
    for (Pid faults = 0; faults < n; ++faults) {
      out.push_back({n, faults, 1});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SmrUniformSweep,
                         testing::ValuesIn(smr_params()),
                         testutil::sweep_name);

TEST(SmrNonuniform, AnucEngineKeepsCorrectReplicasConsistent) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FailurePattern fp(4);
    fp.set_crash(3, 500);
    auto oracle = testutil::omega_sigma_nu_plus(fp, 120, seed);

    const auto commands = streams(4, 2);
    const SimResult sim = simulate(
        fp, oracle.top(),
        make_replicated_log(4, commands, make_anuc(4),
                            /*trust_decided_catchup=*/false),
        smr_opts(fp, commands, seed));

    ASSERT_TRUE(sim.stopped_by_predicate) << "seed " << seed;
    const LogVerdict verdict = check_logs(fp, sim.automata, commands);
    EXPECT_TRUE(verdict.correct_prefix_consistent) << verdict.detail;
    EXPECT_TRUE(verdict.only_submitted) << verdict.detail;
    // all_prefix_consistent MAY fail (the faulty replica is allowed to
    // diverge before crashing) — that is the nonuniform contract, so no
    // assertion either way here; the bench tallies how often it happens.
  }
}

TEST(SmrNonuniform, NaiveCatchupUnderNonuniformEngineCanContaminate) {
  // The E15 lesson as a regression test: bolting the uniform-style
  // DECIDED catch-up onto the nonuniform engine lets a faulty replica's
  // divergent decision reach CORRECT replicas' logs. At least one seed in
  // this family must exhibit it (the fixed no-catch-up mode above never
  // does).
  int contaminated = 0;
  for (std::uint64_t seed = 1; seed <= 40 && contaminated == 0; ++seed) {
    FailurePattern fp(3);
    fp.set_crash(2, 700);
    auto oracle = testutil::omega_sigma_nu_plus(fp, 150, seed);
    const auto commands = streams(3, 3);
    const SimResult sim = simulate(
        fp, oracle.top(),
        make_replicated_log(3, commands, make_anuc(3),
                            /*trust_decided_catchup=*/true),
        smr_opts(fp, commands, seed));
    const LogVerdict verdict = check_logs(fp, sim.automata, commands);
    if (!verdict.correct_prefix_consistent) ++contaminated;
  }
  EXPECT_GT(contaminated, 0);
}

TEST(Smr, ReplicasAgreeOnOrderNotJustMembership) {
  const FailurePattern fp(3);
  auto oracle = testutil::omega_sigma(fp, 0, 3);
  const auto commands = streams(3, 4);
  const SimResult sim =
      simulate(fp, oracle.top(),
               make_replicated_log(3, commands, make_mr_fd_quorum(3)),
               smr_opts(fp, commands, 3));
  ASSERT_TRUE(sim.stopped_by_predicate);

  const auto& log0 =
      static_cast<const ReplicatedLog*>(sim.automata[0].get())->log();
  const auto& log1 =
      static_cast<const ReplicatedLog*>(sim.automata[1].get())->log();
  const std::size_t common = std::min(log0.size(), log1.size());
  EXPECT_GE(common, 12u);  // all 12 commands committed
  for (std::size_t i = 0; i < common; ++i) EXPECT_EQ(log0[i], log1[i]) << i;
}

TEST(Smr, MakeCommandIsInjective) {
  EXPECT_NE(make_command(0, 1), make_command(1, 1));
  EXPECT_NE(make_command(2, 3), make_command(3, 2));
  EXPECT_NE(make_command(0, 1), 0);  // never collides with the no-op
}

}  // namespace
}  // namespace nucon
