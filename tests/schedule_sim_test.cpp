// Tests of schedule simulation from DAG paths (paper §4.2, Lemma 4.10):
// replaying a consensus algorithm along a chain of samples with
// oldest-first delivery reaches decisions, deterministically.
#include "dag/schedule_sim.hpp"

#include <gtest/gtest.h>

#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "dag/dag_builder.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma_nu.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

/// Builds a realistic DAG by running A_DAG under a composed
/// (Omega, Sigma^nu+) oracle — the detector A_nuc consumes.
SampleDag build_dag(const FailurePattern& fp, std::uint64_t seed,
                    std::int64_t steps, Pid owner) {
  OmegaOptions oo;
  oo.stabilize_at = 0;
  oo.seed = seed;
  OmegaOracle omega(fp, oo);
  SigmaNuPlusOptions so;
  so.stabilize_at = 0;
  so.seed = seed + 1;
  SigmaNuPlusOracle sigma(fp, so);
  ComposedOracle oracle(omega, sigma);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  const SimResult sim = simulate(fp, oracle, make_adag(fp.n()), opts);
  return static_cast<const AdagAutomaton*>(
             sim.automata[static_cast<std::size_t>(owner)].get())
      ->core()
      .dag();
}

TEST(ScheduleSim, AnucDecidesAlongAChain) {
  const FailurePattern fp(3);
  const SampleDag dag = build_dag(fp, 1, 900, 0);
  const auto chain = dag.greedy_chain(NodeRef{0, 1});
  ASSERT_GT(chain.size(), 50u);

  const std::vector<Value> zeros(3, 0);
  const ChainSimOutcome outcome =
      simulate_chain(dag, chain, make_anuc(3), zeros, 0);
  EXPECT_TRUE(outcome.observer_decided);
  EXPECT_EQ(outcome.decision, 0);
  EXPECT_GT(outcome.steps_to_decision, 0u);
  EXPECT_LE(outcome.steps_to_decision, chain.size());
  EXPECT_TRUE(outcome.prefix_participants.is_subset_of(outcome.participants));
}

TEST(ScheduleSim, ValidityHoldsInSimulatedSchedules) {
  const FailurePattern fp(3);
  const SampleDag dag = build_dag(fp, 2, 2400, 1);
  const auto chain = dag.greedy_chain(NodeRef{1, 1});

  const ChainSimOutcome zeros =
      simulate_chain(dag, chain, make_anuc(3), {0, 0, 0}, 1);
  const ChainSimOutcome ones =
      simulate_chain(dag, chain, make_anuc(3), {1, 1, 1}, 1);
  if (zeros.observer_decided) EXPECT_EQ(zeros.decision, 0);
  if (ones.observer_decided) EXPECT_EQ(ones.decision, 1);
  EXPECT_TRUE(zeros.observer_decided);
  EXPECT_TRUE(ones.observer_decided);
}

TEST(ScheduleSim, DeterministicReplay) {
  const FailurePattern fp(3);
  const SampleDag dag = build_dag(fp, 3, 700, 0);
  const auto chain = dag.greedy_chain(NodeRef{0, 1});
  const std::vector<Value> proposals = {0, 1, 0};

  const ChainSimOutcome a = simulate_chain(dag, chain, make_anuc(3), proposals, 0);
  const ChainSimOutcome b = simulate_chain(dag, chain, make_anuc(3), proposals, 0);
  EXPECT_EQ(a.observer_decided, b.observer_decided);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.steps_to_decision, b.steps_to_decision);
  EXPECT_EQ(a.participants, b.participants);
}

TEST(ScheduleSim, EmptyChainDecidesNothing) {
  const SampleDag dag(3);
  const std::vector<NodeRef> chain;
  const ChainSimOutcome outcome =
      simulate_chain(dag, chain, make_anuc(3), {0, 0, 0}, 0);
  EXPECT_FALSE(outcome.observer_decided);
  EXPECT_TRUE(outcome.participants.empty());
}

TEST(ScheduleSim, ObserverAbsentFromChainDoesNotDecide) {
  // A chain with no steps of the observer cannot decide at the observer.
  SampleDag dag(3);
  std::vector<NodeRef> chain;
  FdValue v = FdValue::of_leader(1);
  v.set_quorum(ProcessSet{1, 2});
  for (int i = 0; i < 30; ++i) {
    chain.push_back(dag.take_sample(static_cast<Pid>(1 + i % 2), v));
  }
  const ChainSimOutcome outcome =
      simulate_chain(dag, chain, make_anuc(3), {0, 0, 0}, 0);
  EXPECT_FALSE(outcome.observer_decided);
  EXPECT_FALSE(outcome.participants.contains(0));
}

TEST(ScheduleSim, MrAlsoDecidesAlongChains) {
  // The simulator is algorithm-generic: the MR quorum algorithm works too.
  const FailurePattern fp(3);
  const SampleDag dag = build_dag(fp, 5, 900, 2);
  const auto chain = dag.greedy_chain(NodeRef{2, 1});
  const ChainSimOutcome outcome =
      simulate_chain(dag, chain, make_mr_fd_quorum(3), {1, 1, 1}, 2);
  EXPECT_TRUE(outcome.observer_decided);
  EXPECT_EQ(outcome.decision, 1);
}

TEST(ScheduleSim, PrefixParticipantsAreMinimal) {
  // participants(S_0) of the deciding prefix never exceeds the full
  // chain's participants, and the deciding prefix is genuinely shorter
  // when decision happens early.
  const FailurePattern fp(4);
  const SampleDag dag = build_dag(fp, 7, 1600, 0);
  const auto chain = dag.greedy_chain(NodeRef{0, 1});
  const ChainSimOutcome outcome =
      simulate_chain(dag, chain, make_anuc(4), {0, 0, 0, 0}, 0);
  ASSERT_TRUE(outcome.observer_decided);
  EXPECT_LT(outcome.steps_to_decision, chain.size());
}

}  // namespace
}  // namespace nucon
