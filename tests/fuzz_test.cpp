// Robustness: every automaton must tolerate arbitrary bytes on the wire
// (malformed, truncated, empty payloads, random senders) and cross-talk
// from other protocols, without crashing or corrupting its state machine.
// Decoders in this library return nullopt instead of throwing, and every
// on_message handler drops what it cannot parse; these tests exercise that
// discipline for every protocol in the repository.
#include <gtest/gtest.h>

#include "algo/ct_consensus.hpp"
#include "algo/harness.hpp"
#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"
#include "core/extract_sigma_nu.hpp"
#include "core/sigma_from_majority.hpp"
#include "core/sigma_nu_to_plus.hpp"
#include "core/stacked_nuc.hpp"
#include "dag/dag_builder.hpp"
#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma_nu.hpp"
#include "fuzz/mutator.hpp"
#include "reg/abd.hpp"
#include "util/rng.hpp"

namespace nucon {
namespace {

constexpr Pid kN = 4;
/// Payload length ceiling, INCLUSIVE: the ad-hoc `rng.below(40)` loop this
/// file used before the fuzz subsystem landed could never produce a
/// payload of 40+ bytes, so the boundary length went untested.
constexpr std::size_t kMaxPayload = 40;

FdValue rich_fd_value() {
  FdValue v = FdValue::of_leader(0);
  v.set_quorum(ProcessSet{0, 1});
  v.set_suspects(ProcessSet{3});
  return v;
}

/// Feeds `rounds` random messages (and lambda steps) into the automaton.
/// Payload generation reuses the fuzz subsystem's mutator, whose length
/// distribution includes the boundary.
void fuzz(Automaton& a, std::uint64_t seed, int rounds = 600) {
  fuzz::Mutator mut(seed);
  std::vector<Outgoing> out;
  const FdValue d = rich_fd_value();
  for (int i = 0; i < rounds; ++i) {
    out.clear();
    if (mut.rng().chance(3, 4)) {
      const Bytes payload = mut.random_payload(kMaxPayload);
      const Incoming in{static_cast<Pid>(mut.rng().below(kN)), &payload};
      a.step(&in, d, out);
    } else {
      a.step(nullptr, d, out);
    }
  }
}

using NamedFactory = std::pair<const char*, AutomatonFactory>;

std::vector<NamedFactory> all_factories() {
  const ConsensusFactory anuc = make_anuc(kN);
  const ConsensusFactory mr = make_mr_fd_quorum(kN);
  const ConsensusFactory mrm = make_mr_majority(kN);
  const ConsensusFactory ct = make_ct(kN);
  const ConsensusFactory stacked = make_stacked_nuc(kN);
  ExtractOptions eo;
  eo.algorithm = anuc;
  eo.n = kN;
  eo.check_every = 64;  // keep the fuzz loop fast
  std::vector<std::vector<RegOp>> workloads(kN);
  workloads[0] = {{RegOp::Kind::kWrite, 1}, {RegOp::Kind::kRead, 0}};

  return {
      {"anuc", [anuc](Pid p) { return anuc(p, 0); }},
      {"mr_fd_quorum", [mr](Pid p) { return mr(p, 0); }},
      {"mr_majority", [mrm](Pid p) { return mrm(p, 0); }},
      {"ct", [ct](Pid p) { return ct(p, 0); }},
      {"stacked_nuc", [stacked](Pid p) { return stacked(p, 0); }},
      {"adag", make_adag(kN)},
      {"sigma_nu_to_plus", make_sigma_nu_to_plus(kN)},
      {"extract_sigma_nu", make_extract_sigma_nu(eo)},
      {"sigma_from_majority", make_sigma_from_majority(kN, 1)},
      {"abd_register", make_abd(kN, workloads)},
  };
}

TEST(Fuzz, RandomBytesNeverCrashAnyAutomaton) {
  for (const auto& [name, factory] : all_factories()) {
    SCOPED_TRACE(name);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto automaton = factory(0);
      ASSERT_NO_THROW(fuzz(*automaton, seed)) << name;
    }
  }
}

TEST(Fuzz, EmptyAndTinyPayloads) {
  for (const auto& [name, factory] : all_factories()) {
    SCOPED_TRACE(name);
    const auto automaton = factory(1);
    std::vector<Outgoing> out;
    const FdValue d = rich_fd_value();
    const Bytes empty;
    const Bytes one = {0x00};
    const Bytes ff = {0xFF};
    for (const Bytes* payload : {&empty, &one, &ff}) {
      const Incoming in{2, payload};
      ASSERT_NO_THROW(automaton->step(&in, d, out)) << name;
    }
  }
}

TEST(Fuzz, PayloadLengthBoundaries) {
  // The mutator's length distribution is inclusive of the maximum, and
  // every automaton tolerates payloads at and just past the old 40-byte
  // ceiling (oversized fields, truncation points mid-varint, etc).
  fuzz::Mutator mut(1234);
  bool saw_max = false;
  bool saw_empty = false;
  for (int i = 0; i < 2000; ++i) {
    const Bytes p = mut.random_payload(kMaxPayload);
    ASSERT_LE(p.size(), kMaxPayload);
    saw_max = saw_max || p.size() == kMaxPayload;
    saw_empty = saw_empty || p.empty();
  }
  EXPECT_TRUE(saw_max) << "boundary length never generated";
  EXPECT_TRUE(saw_empty);

  const FdValue d = rich_fd_value();
  for (const auto& [name, factory] : all_factories()) {
    SCOPED_TRACE(name);
    const auto automaton = factory(1);
    std::vector<Outgoing> out;
    Rng rng(99);
    for (const std::size_t len : {std::size_t{39}, std::size_t{40},
                                  std::size_t{41}, std::size_t{128}}) {
      Bytes payload(len);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
      const Incoming in{2, &payload};
      ASSERT_NO_THROW(automaton->step(&in, d, out)) << name << " len=" << len;
    }
  }
}

TEST(Fuzz, ReframedCrossTalkIsTolerated) {
  // Multiplexer framing (reframe_sends) wraps a component's payload in a
  // channel header. Deliver every protocol's messages REFRAMED under
  // arbitrary channel bytes to every other protocol: a multiplexing
  // automaton must reject garbage inside a well-formed frame, and a
  // non-multiplexing automaton must reject the frame itself.
  const auto factories = all_factories();
  const FdValue d = rich_fd_value();

  std::vector<Outgoing> harvested;
  for (const auto& [name, factory] : factories) {
    const auto a = factory(0);
    for (int i = 0; i < 8; ++i) a->step(nullptr, d, harvested);
  }
  ASSERT_FALSE(harvested.empty());

  for (const std::uint8_t channel : {0x00, 0x01, 0x02, 0xFF}) {
    std::vector<Outgoing> reframed;
    ByteWriter scratch;
    std::vector<Outgoing> copy = harvested;
    reframe_sends(copy, scratch,
                  [channel](ByteWriter& w, const Bytes& payload) {
                    w.u8(channel);
                    w.raw(payload);
                  },
                  reframed);
    ASSERT_EQ(reframed.size(), harvested.size());

    for (const auto& [name, factory] : factories) {
      SCOPED_TRACE(name);
      const auto a = factory(1);
      std::vector<Outgoing> out;
      for (const Outgoing& o : reframed) {
        const Bytes& payload = o.payload.get();
        ASSERT_EQ(payload.front(), channel);  // framing really happened
        const Incoming in{0, &payload};
        ASSERT_NO_THROW(a->step(&in, d, out)) << name;
      }
    }
  }
}

TEST(Fuzz, CrossProtocolTrafficIsTolerated) {
  // Deliver every protocol's genuine messages to every OTHER protocol.
  const auto factories = all_factories();
  const FdValue d = rich_fd_value();

  // Harvest real messages from each protocol by stepping it a few times.
  std::vector<Bytes> harvested;
  for (const auto& [name, factory] : factories) {
    const auto a = factory(0);
    std::vector<Outgoing> out;
    for (int i = 0; i < 8; ++i) a->step(nullptr, d, out);
    for (const Outgoing& o : out) harvested.push_back(o.payload.get());
  }
  ASSERT_FALSE(harvested.empty());

  for (const auto& [name, factory] : factories) {
    SCOPED_TRACE(name);
    const auto a = factory(1);
    std::vector<Outgoing> out;
    for (const Bytes& payload : harvested) {
      const Incoming in{0, &payload};
      ASSERT_NO_THROW(a->step(&in, d, out)) << name;
    }
  }
}

TEST(Fuzz, ConsensusSafetySurvivesGarbageInjectedMidRun) {
  // A run of A_nuc where every automaton also receives garbage messages
  // interleaved with the real protocol: decisions must still satisfy
  // nonuniform consensus (the garbage is unparseable, hence ignored).
  class GarbageInjector final : public ConsensusAutomaton {
   public:
    GarbageInjector(std::unique_ptr<ConsensusAutomaton> inner, Pid n,
                    std::uint64_t seed)
        : inner_(std::move(inner)), n_(n), mut_(seed) {}

    void step(const Incoming* in, const FdValue& d,
              std::vector<Outgoing>& out) override {
      inner_->step(in, d, out);
      if (mut_.rng().chance(1, 4)) {
        out.push_back({static_cast<Pid>(mut_.rng().below(n_)),
                       mut_.random_payload(kMaxPayload)});
      }
    }
    [[nodiscard]] std::optional<Value> decision() const override {
      return inner_->decision();
    }

   private:
    std::unique_ptr<ConsensusAutomaton> inner_;
    Pid n_;
    fuzz::Mutator mut_;
  };

  FailurePattern fp(kN);
  fp.set_crash(3, 60);
  OmegaOptions oo;
  oo.stabilize_at = 100;
  OmegaOracle omega(fp, oo);
  SigmaNuPlusOptions so;
  so.stabilize_at = 100;
  SigmaNuPlusOracle sigma(fp, so);
  ComposedOracle oracle(omega, sigma);

  const ConsensusFactory inner = make_anuc(kN);
  const ConsensusFactory noisy = [inner](Pid p, Value proposal) {
    return std::make_unique<GarbageInjector>(
        inner(p, proposal), kN, 0xF00D + static_cast<std::uint64_t>(p));
  };

  SchedulerOptions opts;
  opts.seed = 77;
  opts.max_steps = 120'000;
  const ConsensusRunStats stats =
      run_consensus(fp, oracle, noisy, {0, 1, 0, 1}, opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_nonuniform()) << stats.verdict.detail;
}

}  // namespace
}  // namespace nucon
