#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, Basic) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  a.add(2.0);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  a.add(-5.0);
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW({ (void)t.render(); });
}

TEST(TextTable, FmtIntegers) {
  EXPECT_EQ(TextTable::fmt(3.0), "3");
  EXPECT_EQ(TextTable::fmt(-2.0), "-2");
  EXPECT_EQ(TextTable::fmt(0.0), "0");
}

TEST(TextTable, FmtFractions) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(0.5, 1), "0.5");
}

}  // namespace
}  // namespace nucon
