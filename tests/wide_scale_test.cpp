// The wide-ProcessSet regime (n > 64) and the incremental QuorumHistory
// caches — the `scale` label's correctness floor.
//
// ProcessSet grew from one 64-bit mask to kMaxProcesses=1024 with a
// single-word fast path, so every operation is exercised exactly where
// the representation changes shape: widths 63/64/65 (the word boundary)
// and 127/128/1000 (interior boundaries and the top of the range). The
// QuorumHistory half is an equivalence oracle: randomized insert/import
// sequences where every cached considered_faulty / distrusts answer must
// match the recompute-from-scratch reference (*_slow) — the same checks
// the !NDEBUG asserts run inline, kept alive here because the CI presets
// compile with -DNDEBUG.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/quorum_history.hpp"
#include "util/bytes.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace nucon {
namespace {

constexpr Pid kWidths[] = {63, 64, 65, 127, 128, 1000};

/// A deterministic scattered subset of [0, n): every third-ish member,
/// always including both endpoints and the word-boundary neighbours.
ProcessSet scattered(Pid n) {
  ProcessSet s;
  for (Pid p = 0; p < n; p += 3) s.insert(p);
  s.insert(0);
  s.insert(n - 1);
  for (Pid edge : {62, 63, 64, 65, 126, 127, 128}) {
    if (edge < n) s.insert(edge);
  }
  return s;
}

TEST(WideProcessSet, InsertContainsAcrossWordBoundaries) {
  ProcessSet s;
  const std::vector<Pid> members = {0, 62, 63, 64, 65, 126, 127, 128, 999};
  for (Pid p : members) s.insert(p);
  EXPECT_EQ(s.size(), static_cast<int>(members.size()));
  for (Pid p : members) EXPECT_TRUE(s.contains(p)) << p;
  for (Pid p : {1, 61, 66, 125, 129, 998, 1023}) {
    EXPECT_FALSE(s.contains(p)) << p;
  }
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 999);
  s.erase(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(65));
  EXPECT_EQ(s.size(), static_cast<int>(members.size()) - 1);
}

TEST(WideProcessSet, UniverseAtEveryBoundaryWidth) {
  for (const Pid n : kWidths) {
    const ProcessSet u = ProcessSet::full(n);
    EXPECT_EQ(u.size(), n) << n;
    EXPECT_TRUE(u.contains(0)) << n;
    EXPECT_TRUE(u.contains(n - 1)) << n;
    EXPECT_FALSE(u.contains(n)) << n;
    EXPECT_EQ(u.min(), 0) << n;
    EXPECT_EQ(u.max(), n - 1) << n;
  }
}

TEST(WideProcessSet, ComplementAgainstTheUniverse) {
  for (const Pid n : kWidths) {
    const ProcessSet u = ProcessSet::full(n);
    const ProcessSet s = scattered(n);
    const ProcessSet comp = u - s;
    EXPECT_EQ(comp.size(), n - s.size()) << n;
    EXPECT_EQ((s | comp), u) << n;
    EXPECT_TRUE((s & comp).empty()) << n;
    EXPECT_FALSE(s.intersects(comp)) << n;
    // Complementing twice returns the original set.
    EXPECT_EQ(u - comp, s) << n;
  }
}

TEST(WideProcessSet, DisjointSplitsDetectEachOther) {
  for (const Pid n : kWidths) {
    // Even/odd split: disjoint, covering, both straddling every word.
    ProcessSet even;
    ProcessSet odd;
    for (Pid p = 0; p < n; ++p) (p % 2 == 0 ? even : odd).insert(p);
    EXPECT_FALSE(even.intersects(odd)) << n;
    EXPECT_TRUE((even & odd).empty()) << n;
    EXPECT_EQ((even | odd), ProcessSet::full(n)) << n;
    EXPECT_TRUE(even.is_subset_of(ProcessSet::full(n))) << n;
    EXPECT_FALSE(even.is_subset_of(odd)) << n;
    // One shared member flips intersects.
    ProcessSet odd_plus = odd;
    odd_plus.insert(even.max());
    EXPECT_TRUE(even.intersects(odd_plus)) << n;
  }
}

TEST(WideProcessSet, PopcountMatchesIteration) {
  for (const Pid n : kWidths) {
    const ProcessSet s = scattered(n);
    int count = 0;
    Pid prev = -1;
    for (Pid p : s) {
      EXPECT_LT(prev, p);  // ascending iteration across word boundaries
      prev = p;
      ++count;
    }
    EXPECT_EQ(s.size(), count) << n;
    // nth() is the iteration order's random-access form.
    EXPECT_EQ(s.nth(0), s.min()) << n;
    EXPECT_EQ(s.nth(s.size() - 1), s.max()) << n;
  }
}

TEST(WideProcessSet, OrderingIsNumericAcrossWords) {
  // The total order extends the old single-mask order: any set containing
  // a bit >= 64 compares above every single-word set.
  EXPECT_LT(ProcessSet{63}, ProcessSet{64});
  EXPECT_LT(ProcessSet::full(64), ProcessSet{64});
  EXPECT_LT((ProcessSet{0, 64}), (ProcessSet{1, 64}));
  EXPECT_LT(ProcessSet{64}, ProcessSet{128});
  std::set<ProcessSet> sorted;
  sorted.insert(ProcessSet{64});
  sorted.insert(ProcessSet{63});
  sorted.insert(ProcessSet{64});  // duplicate
  sorted.insert(ProcessSet{999});
  EXPECT_EQ(sorted.size(), 3u);
  EXPECT_EQ(*sorted.begin(), ProcessSet{63});
  EXPECT_EQ(*sorted.rbegin(), ProcessSet{999});
}

TEST(WideProcessSet, EncodeDecodeRoundTripsAtEveryWidth) {
  Rng rng(2026);
  for (const Pid n : kWidths) {
    for (int trial = 0; trial < 8; ++trial) {
      const int k = static_cast<int>(rng.below(static_cast<std::uint64_t>(n) + 1));
      const ProcessSet s = rng.pick_subset(ProcessSet::full(n), k);
      ByteWriter w;
      w.process_set(s, n);
      const Bytes bytes = w.take();
      EXPECT_EQ(bytes.size(), 8u * ((static_cast<std::size_t>(n) + 63) / 64));
      ByteReader r(bytes);
      const auto back = r.process_set(n);
      ASSERT_TRUE(back.has_value()) << n;
      EXPECT_EQ(*back, s) << n;
    }
  }
}

TEST(WideProcessSet, WidthAwareEncodingMatchesLegacyBelow64) {
  // The wire-format compatibility contract: for n <= 64 the width-aware
  // encoder must emit exactly the legacy single-u64 bytes.
  Rng rng(7);
  for (const Pid n : {1, 5, 63, 64}) {
    const ProcessSet s =
        rng.pick_subset(ProcessSet::full(n), static_cast<int>(n / 2));
    ByteWriter aware;
    aware.process_set(s, n);
    ByteWriter legacy;
    legacy.process_set(s);
    EXPECT_EQ(aware.take(), legacy.take()) << n;
  }
}

TEST(WideProcessSet, CrossWidthDecodeIsRejected) {
  // A set with members at/above the reader's width must not decode: the
  // width is derived from n on both sides, so stray high bits are the
  // signature of a mismatched encoding.
  ProcessSet s{10, 64};
  ByteWriter w;
  w.process_set(s, 65);
  const Bytes wide = w.take();
  {
    // Control: decoding at the width it was encoded at round-trips.
    ByteReader r(wide);
    const auto back = r.process_set(65);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  {
    // Two-word payload with a member above the reader's width: rejected.
    ProcessSet high{10, 70};
    ByteWriter w2;
    w2.process_set(high, 128);
    const Bytes b2 = w2.take();
    ByteReader r2(b2);
    EXPECT_FALSE(r2.process_set(65).has_value());
  }
  {
    // Single-word case: bit 63 encoded at width 64 must not decode at 63.
    ByteWriter w3;
    w3.process_set(ProcessSet{63}, 64);
    const Bytes b3 = w3.take();
    ByteReader r3(b3);
    EXPECT_FALSE(r3.process_set(63).has_value());
    ByteReader r4(b3);
    EXPECT_TRUE(r4.process_set(64).has_value());
  }
}

TEST(WideProcessSet, MajorityAtScale) {
  EXPECT_TRUE(is_majority(ProcessSet::full(501), 1000));
  EXPECT_FALSE(is_majority(ProcessSet::full(500), 1000));
  ProcessSet top_half;
  for (Pid p = 500; p < 1000; ++p) top_half.insert(p);
  EXPECT_FALSE(is_majority(top_half, 1000));
  top_half.insert(42);
  EXPECT_TRUE(is_majority(top_half, 1000));
}

// ---------------------------------------------------------------------------
// QuorumHistory: incremental caches vs recompute-from-scratch reference.

/// Asserts every cached query agrees with its *_slow reference on `h`.
void expect_cache_matches_reference(const QuorumHistory& h,
                                    const char* context) {
  for (Pid p = 0; p < h.n(); ++p) {
    EXPECT_EQ(h.considered_faulty(p), h.considered_faulty_slow(p))
        << context << ": considered_faulty(" << p << ")";
    for (Pid q = 0; q < h.n(); ++q) {
      EXPECT_EQ(h.distrusts(p, q), h.distrusts_slow(p, q))
          << context << ": distrusts(" << p << ", " << q << ")";
    }
  }
}

/// A random quorum biased toward collisions: half the draws come from a
/// small pool of shapes so disjointness and shared-value cases both occur.
ProcessSet random_quorum(Rng& rng, Pid n) {
  if (rng.chance(1, 10)) return {};  // empty quorum: disjoint from itself
  if (rng.chance(1, 2)) {
    // Pool shape: one of the four quarters of [0, n).
    const Pid quarter = n / 4;
    const auto which = static_cast<Pid>(rng.below(4));
    ProcessSet s;
    for (Pid p = which * quarter; p < (which + 1) * quarter; ++p) s.insert(p);
    return s;
  }
  const int k = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  return rng.pick_subset(ProcessSet::full(n), k);
}

TEST(QuorumHistoryScale, IncrementalMatchesReferenceOnRandomInserts) {
  const Pid n = 12;
  Rng rng(0xC0FFEE);
  QuorumHistory h(n);
  for (int step = 0; step < 160; ++step) {
    const Pid owner = static_cast<Pid>(rng.below(static_cast<std::uint64_t>(n)));
    h.insert(owner, random_quorum(rng, n));
    if (step % 8 == 7) expect_cache_matches_reference(h, "insert sequence");
  }
  expect_cache_matches_reference(h, "insert final");
}

TEST(QuorumHistoryScale, IncrementalMatchesReferenceAcrossImports) {
  const Pid n = 10;
  Rng rng(0xFEED);
  QuorumHistory a(n);
  QuorumHistory b(n);
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < 6; ++i) {
      const Pid owner = static_cast<Pid>(rng.below(static_cast<std::uint64_t>(n)));
      (rng.chance(1, 2) ? a : b).insert(owner, random_quorum(rng, n));
    }
    // Query one side (warming its cache), then import into it: the merge
    // must keep the warmed cache consistent, not just a cold one.
    (void)a.considered_faulty(0);
    (void)a.distrusts(0, 1);
    if (rng.chance(1, 2)) {
      a.import(b);
      expect_cache_matches_reference(a, "import b into a");
    } else {
      b.import(a);
      expect_cache_matches_reference(b, "import a into b");
    }
  }
  a.import(b);
  b.import(a);
  expect_cache_matches_reference(a, "final a");
  expect_cache_matches_reference(b, "final b");
}

TEST(QuorumHistoryScale, CopiesAndCodecPreserveCacheConsistency) {
  const Pid n = 8;
  Rng rng(0xDEAD);
  QuorumHistory h(n);
  for (int i = 0; i < 40; ++i) {
    h.insert(static_cast<Pid>(rng.below(static_cast<std::uint64_t>(n))),
             random_quorum(rng, n));
  }
  (void)h.considered_faulty(3);  // warm the cache before copying

  QuorumHistory copy = h;
  copy.insert(0, ProcessSet{7});  // diverge the copy
  expect_cache_matches_reference(copy, "mutated copy");
  expect_cache_matches_reference(h, "original after copy mutation");

  ByteWriter w;
  h.encode(w);
  const Bytes bytes = w.take();
  ByteReader r(bytes);
  const auto decoded = QuorumHistory::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), h.size());
  expect_cache_matches_reference(*decoded, "decoded");
  for (Pid p = 0; p < n; ++p) {
    EXPECT_EQ(decoded->considered_faulty(p), h.considered_faulty(p)) << p;
  }
}

TEST(QuorumHistoryScale, WideHistoriesStayConsistent) {
  // The same oracle beyond the old 64-process ceiling: fewer steps (the
  // reference is the quadratic recompute) but real multi-word quorums.
  const Pid n = 80;
  Rng rng(0xB16);
  QuorumHistory h(n);
  ProcessSet left;
  ProcessSet right;
  for (Pid p = 0; p < n; ++p) (p < n / 2 ? left : right).insert(p);
  h.insert(0, left);
  h.insert(1, right);  // disjoint from left: 0 and 1 each see the other
  EXPECT_TRUE(h.considered_faulty(0).contains(1));
  EXPECT_TRUE(h.considered_faulty(1).contains(0));
  for (int i = 0; i < 24; ++i) {
    h.insert(static_cast<Pid>(rng.below(static_cast<std::uint64_t>(n))),
             random_quorum(rng, n));
  }
  for (Pid p = 0; p < 8; ++p) {
    EXPECT_EQ(h.considered_faulty(p), h.considered_faulty_slow(p)) << p;
    for (Pid q = 0; q < 8; ++q) {
      EXPECT_EQ(h.distrusts(p, q), h.distrusts_slow(p, q)) << p << "," << q;
    }
  }
}

}  // namespace
}  // namespace nucon
