// Properties of the Lemma 4.8-style fair chains, including the batching
// parameter that trades path length against interleaving granularity.
#include <gtest/gtest.h>

#include "dag/dag_builder.hpp"
#include "fd/sigma_nu.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

SampleDag gossiped_dag(Pid n, std::int64_t steps, std::uint64_t seed) {
  const FailurePattern fp(n);
  SigmaNuOptions so;
  so.seed = seed;
  SigmaNuOracle oracle(fp, so);
  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  const SimResult sim = simulate(fp, oracle, make_adag(n), opts);
  return static_cast<const AdagAutomaton*>(sim.automata[0].get())
      ->core()
      .dag();
}

struct ChainParam {
  Pid n;
  int batch;
  std::uint64_t seed;
};

class FairChainSweep : public testing::TestWithParam<ChainParam> {};

TEST_P(FairChainSweep, ChainsAreGenuinePaths) {
  const auto [n, batch, seed] = GetParam();
  const SampleDag dag = gossiped_dag(n, 1200, seed);
  const auto chain = dag.fair_chain(NodeRef{0, 1}, batch);
  ASSERT_GT(chain.size(), 10u);
  EXPECT_EQ(chain.front(), (NodeRef{0, 1}));
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    ASSERT_TRUE(dag.has_edge(chain[i], chain[i + 1]))
        << "broken edge at " << i;
  }
}

TEST_P(FairChainSweep, ChainsCoverEveryProcess) {
  const auto [n, batch, seed] = GetParam();
  const SampleDag dag = gossiped_dag(n, 1200, seed);
  const auto chain = dag.fair_chain(NodeRef{0, 1}, batch);
  EXPECT_EQ(participants_of(std::span<const NodeRef>(chain)),
            ProcessSet::full(n));
}

TEST_P(FairChainSweep, NoSampleAppearsTwice) {
  const auto [n, batch, seed] = GetParam();
  const SampleDag dag = gossiped_dag(n, 800, seed);
  const auto chain = dag.fair_chain(NodeRef{0, 1}, batch);
  std::vector<std::uint64_t> keys;
  for (const NodeRef& v : chain) {
    keys.push_back((static_cast<std::uint64_t>(v.q) << 32) | v.k);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FairChainSweep,
    testing::Values(ChainParam{2, 1, 1}, ChainParam{2, 8, 1},
                    ChainParam{3, 1, 2}, ChainParam{3, 8, 2},
                    ChainParam{3, 32, 2}, ChainParam{5, 8, 3},
                    ChainParam{5, 16, 4}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.batch) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(FairChain, LargerBatchesGiveLongerChains) {
  const SampleDag dag = gossiped_dag(3, 2000, 9);
  const auto short_chain = dag.fair_chain(NodeRef{0, 1}, 1);
  const auto long_chain = dag.fair_chain(NodeRef{0, 1}, 16);
  EXPECT_GT(long_chain.size(), short_chain.size() * 2);
}

TEST(FairChain, MissingRootGivesEmptyChain) {
  const SampleDag dag(3);
  EXPECT_TRUE(dag.fair_chain(NodeRef{0, 1}).empty());
  EXPECT_TRUE(dag.fair_chain(NodeRef{2, 7}).empty());
}

TEST(FairChain, SingleProcessChainIsItsWholeSuffix) {
  SampleDag dag(2);
  for (int i = 0; i < 10; ++i) dag.take_sample(1, FdValue::of_leader(1));
  const auto chain = dag.fair_chain(NodeRef{1, 4}, 4);
  EXPECT_EQ(chain.size(), 7u);  // samples 4..10
  EXPECT_EQ(chain.front(), (NodeRef{1, 4}));
  EXPECT_EQ(chain.back(), (NodeRef{1, 10}));
}

}  // namespace
}  // namespace nucon
