// The fuzzing engine's determinism contract and the mutator's
// serialization properties.
//
// Mirrors obs_report_test.cpp's pattern for the report layer: the same
// campaign (master seed + execution budget) at 1 and at 8 threads must
// produce identical corpus contents, coverage counters, find lists and
// BENCH report bodies — the engine generates candidates serially and
// merges in batch order, so parallelism must be invisible.
#include <gtest/gtest.h>

#include "fuzz/engine.hpp"
#include "fuzz/mutator.hpp"

namespace nucon::fuzz {
namespace {

TargetSpec small_naive_target() {
  TargetSpec t;
  t.algo = exp::Algo::kNaive;
  t.n = 4;
  t.stabilize = 120;
  t.max_steps = 4000;
  return t;
}

EngineOptions small_campaign(unsigned threads) {
  EngineOptions opts;
  opts.target = small_naive_target();
  opts.master_seed = 42;
  opts.max_execs = 160;
  opts.batch_size = 32;
  opts.seed_genomes = 8;
  opts.max_finds = 2;
  opts.threads = threads;
  return opts;
}

TEST(FuzzEngine, OneVsEightThreadsBitIdentical) {
  const EngineOptions o1 = small_campaign(1);
  const EngineOptions o8 = small_campaign(8);
  const FuzzResult r1 = run_fuzz(o1);
  const FuzzResult r8 = run_fuzz(o8);

  // Corpus contents, in admission order.
  ASSERT_EQ(r1.corpus.size(), r8.corpus.size());
  for (std::size_t i = 0; i < r1.corpus.size(); ++i) {
    EXPECT_EQ(r1.corpus[i].to_string(), r8.corpus[i].to_string()) << i;
  }

  // Finds, including the minimized genomes (the minimizer runs serially
  // over a deterministic find list, so it is covered by the contract too).
  ASSERT_EQ(r1.finds.size(), r8.finds.size());
  for (std::size_t k = 0; k < r1.finds.size(); ++k) {
    EXPECT_EQ(r1.finds[k].violation, r8.finds[k].violation);
    EXPECT_EQ(r1.finds[k].divergence_shape, r8.finds[k].divergence_shape);
    EXPECT_EQ(r1.finds[k].exec_index, r8.finds[k].exec_index);
    EXPECT_EQ(r1.finds[k].genome.to_string(), r8.finds[k].genome.to_string());
    EXPECT_EQ(r1.finds[k].minimized.to_string(),
              r8.finds[k].minimized.to_string());
  }

  // Coverage counters and the per-batch curve.
  EXPECT_EQ(r1.stats.execs, r8.stats.execs);
  EXPECT_EQ(r1.stats.corpus_size, r8.stats.corpus_size);
  EXPECT_EQ(r1.stats.unique_states, r8.stats.unique_states);
  EXPECT_EQ(r1.stats.divergence_shapes, r8.stats.divergence_shapes);
  EXPECT_EQ(r1.stats.minimize_probes, r8.stats.minimize_probes);
  EXPECT_EQ(r1.stats.coverage_curve, r8.stats.coverage_curve);

  // BENCH report body (include_timings=false — wall clock is the one
  // thing allowed to differ).
  EXPECT_EQ(obs::report_json(fuzz_report(o1, r1), false),
            obs::report_json(fuzz_report(o8, r8), false));
}

TEST(FuzzEngine, RediscoversNaiveViolationAndMinimizes) {
  // The acceptance scenario in miniature: a fixed-seed campaign against
  // the naive Sigma^nu-quorum substitution finds a nonuniform agreement
  // violation, and the minimized genome still reproduces it.
  EngineOptions opts = small_campaign(0);  // hardware threads
  opts.max_execs = 2048;
  const FuzzResult result = run_fuzz(opts);
  ASSERT_FALSE(result.finds.empty());
  const Find& f = result.finds.front();
  EXPECT_EQ(f.violation, "nonuniform");

  ExecOptions eo;
  eo.collect_coverage = false;
  EXPECT_EQ(execute_genome(f.minimized, eo).violation, "nonuniform");
  // Minimization never grows a genome.
  EXPECT_LE(f.minimized.deliveries.size(), f.genome.deliveries.size());
  EXPECT_LE(f.minimized.fd_perturbs.size(), f.genome.fd_perturbs.size());
}

TEST(FuzzEngine, ExecutionIsPure) {
  Mutator mut(7);
  const Genome g = mut.mutate(mut.random_genome(small_naive_target()));
  const ExecutionResult a = execute_genome(g);
  const ExecutionResult b = execute_genome(g);
  EXPECT_EQ(a.state_keys, b.state_keys);
  EXPECT_EQ(a.divergence_shape, b.divergence_shape);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.stats.metrics, b.stats.metrics);
}

TEST(FuzzEngine, DeliveryGenesReachTheScheduler) {
  // All-lambda genes for the whole run: nothing may ever be delivered,
  // and every step must be counted as injected.
  Genome g;
  g.target = small_naive_target();
  g.target.max_steps = 200;
  g.seed = 5;
  g.deliveries.assign(200, kInjectLambda);
  const ExecutionResult r = execute_genome(g);
  EXPECT_EQ(r.stats.metrics.counter_value("scheduler.delivers"), 0);
  EXPECT_EQ(r.stats.metrics.counter_value("scheduler.injected_choices"),
            r.stats.metrics.counter_value("scheduler.steps"));
  EXPECT_TRUE(r.violation.empty());  // starvation is not a violation
}

TEST(FuzzMutator, SerializationRoundTrips) {
  Mutator mut(99);
  TargetSpec targets[] = {small_naive_target(), TargetSpec{}};
  targets[1].algo = exp::Algo::kAnuc;
  targets[1].n = 5;
  for (const TargetSpec& t : targets) {
    Genome g = mut.random_genome(t);
    for (int i = 0; i < 50; ++i) {
      g = mut.mutate(g);
      const std::string text = g.to_string();
      const auto parsed = Genome::parse(text);
      ASSERT_TRUE(parsed.has_value()) << text;
      EXPECT_EQ(*parsed, g);
      EXPECT_EQ(parsed->to_string(), text);
    }
  }
}

TEST(FuzzMutator, ExpectedVerdictFieldRoundTrips) {
  Genome g;
  g.target = small_naive_target();
  g.expected = "nonuniform";
  const auto parsed = Genome::parse(g.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->expected, "nonuniform");
  EXPECT_EQ(*parsed, g);
}

TEST(FuzzMutator, ParseRejectsMalformedGenomes) {
  EXPECT_FALSE(Genome::parse("").has_value());
  EXPECT_FALSE(Genome::parse("nucon-genome v2\nend\n").has_value());
  EXPECT_FALSE(Genome::parse("nucon-genome v1\n").has_value());  // no end
  EXPECT_FALSE(
      Genome::parse("nucon-genome v1\nalgo nope\nend\n").has_value());
  EXPECT_FALSE(
      Genome::parse("nucon-genome v1\nn 1\nend\n").has_value());
  EXPECT_FALSE(Genome::parse("nucon-genome v1\ncrash 9 5\nend\n").has_value());
  // Crashing every process leaves no correct process: invalid.
  EXPECT_FALSE(Genome::parse("nucon-genome v1\nn 2\ncrash 0 5\ncrash 1 5\nend\n")
                   .has_value());
}

TEST(FuzzMutator, MutantsAlwaysValidate) {
  Mutator mut(3);
  Genome g = mut.random_genome(small_naive_target());
  for (int i = 0; i < 300; ++i) {
    g = mut.mutate(g);
    // failure_pattern_of validates; it throws on a malformed genome.
    EXPECT_NO_THROW((void)failure_pattern_of(g)) << g.to_string();
  }
}

}  // namespace
}  // namespace nucon::fuzz
