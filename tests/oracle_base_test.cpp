// Properties of the oracle construction helpers: the noisy-superset
// generator and the deterministic mix underlie every oracle's legality, so
// they get their own property tests.
#include "fd/oracle_base.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nucon {
namespace {

TEST(OracleMix, DeterministicInAllArguments) {
  EXPECT_EQ(oracle_mix(1, 2, 3, 4), oracle_mix(1, 2, 3, 4));
  EXPECT_NE(oracle_mix(1, 2, 3, 4), oracle_mix(2, 2, 3, 4));
  EXPECT_NE(oracle_mix(1, 2, 3, 4), oracle_mix(1, 3, 3, 4));
  EXPECT_NE(oracle_mix(1, 2, 3, 4), oracle_mix(1, 2, 4, 4));
  EXPECT_NE(oracle_mix(1, 2, 3, 4), oracle_mix(1, 2, 3, 5));
}

TEST(OracleMix, SpreadsAcrossTime) {
  std::set<std::uint64_t> seen;
  for (Time t = 0; t < 1000; ++t) seen.insert(oracle_mix(7, 0, t));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(NoisySuperset, AlwaysContainsTheCore) {
  const ProcessSet core{1, 3};
  const ProcessSet universe = ProcessSet::full(8);
  for (std::uint64_t mix = 0; mix < 500; ++mix) {
    const ProcessSet q = noisy_superset(core, universe, mix);
    EXPECT_TRUE(core.is_subset_of(q)) << q.to_string();
    EXPECT_TRUE(q.is_subset_of(universe | core)) << q.to_string();
  }
}

TEST(NoisySuperset, StaysInsideUniversePlusCore) {
  const ProcessSet core{0};
  const ProcessSet universe{0, 1, 2};
  for (std::uint64_t mix = 0; mix < 200; ++mix) {
    EXPECT_TRUE(noisy_superset(core, universe, mix)
                    .is_subset_of(ProcessSet{0, 1, 2}));
  }
}

TEST(NoisySuperset, CoreOutsideUniverseIsStillIncluded) {
  // The Sigma^nu+ oracle uses noisy_superset({p, kernel}, correct | {p}):
  // a faulty p stays included even though it is outside the stable
  // universe.
  const ProcessSet core{5};
  const ProcessSet universe{0, 1};
  for (std::uint64_t mix = 0; mix < 100; ++mix) {
    EXPECT_TRUE(noisy_superset(core, universe, mix).contains(5));
  }
}

TEST(NoisySuperset, ActuallyVaries) {
  const ProcessSet core{0};
  const ProcessSet universe = ProcessSet::full(10);
  std::set<std::uint64_t> distinct;
  for (std::uint64_t mix = 0; mix < 200; ++mix) {
    distinct.insert(noisy_superset(core, universe, mix).mask());
  }
  EXPECT_GT(distinct.size(), 20u);
}

TEST(NoisySuperset, DeterministicPerMix) {
  const ProcessSet core{2};
  const ProcessSet universe = ProcessSet::full(6);
  for (std::uint64_t mix : {0ull, 17ull, 999ull}) {
    EXPECT_EQ(noisy_superset(core, universe, mix),
              noisy_superset(core, universe, mix));
  }
}

}  // namespace
}  // namespace nucon
