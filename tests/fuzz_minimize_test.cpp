// Minimizer unit tests: synthetic predicates with a known minimal
// violating core, convergence of the chunk-reset ddmin, and determinism
// of the whole shrinking process.
#include <gtest/gtest.h>

#include "fuzz/minimize.hpp"
#include "fuzz/mutator.hpp"

namespace nucon::fuzz {
namespace {

Genome noisy_genome() {
  Genome g;
  g.target.algo = exp::Algo::kNaive;
  g.target.n = 4;
  g.target.max_steps = 1000;
  g.seed = 11;
  g.deliveries.assign(64, 1);  // 64 noisy index genes
  g.deliveries[3] = 5;
  g.deliveries[10] = 5;
  g.crashes = {kNeverCrashes, 50, kNeverCrashes, 70};
  g.fd_perturbs.push_back({0, 10, 5, PerturbKind::kLeader, 2});
  g.fd_perturbs.push_back({1, 20, 5, PerturbKind::kQuorumDrop, 3});
  g.fd_perturbs.push_back({2, 30, 5, PerturbKind::kSuspectFlip, 1});
  return g;
}

/// Delivery gene at a position, with the defer default past the end —
/// the same semantics the scheduler hook gives the genome.
std::int32_t gene_at(const Genome& g, std::size_t i) {
  return i < g.deliveries.size() ? g.deliveries[i] : kInjectDefer;
}

TEST(FuzzMinimize, ConvergesToKnownDeliveryCore) {
  // The "violation" needs exactly genes 3 and 10 to hold value 5; all 62
  // other genes, both crashes and all three perturbs are noise.
  const GenomePredicate needs_two_genes = [](const Genome& g) {
    return gene_at(g, 3) == 5 && gene_at(g, 10) == 5;
  };
  MinimizeStats stats;
  const Genome min = minimize_genome(noisy_genome(), needs_two_genes, &stats);

  ASSERT_TRUE(needs_two_genes(min));
  // The core survives at its original positions (chunk RESET, not removal,
  // so positions never shift)...
  EXPECT_EQ(min.deliveries.size(), 11u);  // truncated right after gene 10
  EXPECT_EQ(min.deliveries[3], 5);
  EXPECT_EQ(min.deliveries[10], 5);
  // ...and every other gene was reset to defer.
  for (const std::size_t i : {0u, 1u, 2u, 4u, 5u, 6u, 7u, 8u, 9u}) {
    EXPECT_EQ(min.deliveries[i], kInjectDefer) << i;
  }
  // Noise genes of the other kinds are gone entirely.
  EXPECT_TRUE(min.fd_perturbs.empty());
  EXPECT_TRUE(min.crashes.empty());
  EXPECT_GT(stats.probes, 0u);
}

TEST(FuzzMinimize, KeepsOnlyTheLoadBearingPerturbGene) {
  const GenomePredicate needs_quorum_drop = [](const Genome& g) {
    for (const FdPerturbGene& pg : g.fd_perturbs) {
      if (pg.kind == PerturbKind::kQuorumDrop) return true;
    }
    return false;
  };
  const Genome min = minimize_genome(noisy_genome(), needs_quorum_drop);
  ASSERT_EQ(min.fd_perturbs.size(), 1u);
  EXPECT_EQ(min.fd_perturbs[0].kind, PerturbKind::kQuorumDrop);
  EXPECT_TRUE(min.deliveries.empty());
  EXPECT_TRUE(min.crashes.empty());
}

TEST(FuzzMinimize, KeepsOnlyTheLoadBearingCrash) {
  const GenomePredicate needs_p3_crash = [](const Genome& g) {
    return g.crashes.size() == 4 && g.crashes[3] != kNeverCrashes;
  };
  const Genome min = minimize_genome(noisy_genome(), needs_p3_crash);
  ASSERT_EQ(min.crashes.size(), 4u);
  EXPECT_EQ(min.crashes[1], kNeverCrashes);  // the noise crash is cleared
  EXPECT_NE(min.crashes[3], kNeverCrashes);
  EXPECT_TRUE(min.deliveries.empty());
  EXPECT_TRUE(min.fd_perturbs.empty());
}

TEST(FuzzMinimize, ReturnsInputWhenPreconditionFails) {
  const Genome g = noisy_genome();
  const Genome out = minimize_genome(g, [](const Genome&) { return false; });
  EXPECT_EQ(out, g);
}

TEST(FuzzMinimize, EveryIntermediateProbeIsDeterministic) {
  // Record the exact candidate sequence of two independent minimizations;
  // they must match probe for probe (the guarantee that lets a minimized
  // corpus entry re-validate anywhere).
  const auto run = [](std::vector<std::string>& probes) {
    const GenomePredicate pred = [&probes](const Genome& g) {
      probes.push_back(g.to_string());
      return gene_at(g, 3) == 5 && gene_at(g, 10) == 5;
    };
    return minimize_genome(noisy_genome(), pred);
  };
  std::vector<std::string> probes_a;
  std::vector<std::string> probes_b;
  const Genome a = run(probes_a);
  const Genome b = run(probes_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(probes_a, probes_b);
}

TEST(FuzzMinimize, MinimizeViolationShrinksARealFind) {
  // A genuine violating genome (the naive substitution under the seeded
  // policy with mutation noise piled on): minimize_violation must strip
  // the noise and keep the violation reproducible.
  Genome g;
  g.target.algo = exp::Algo::kNaive;
  g.target.n = 4;
  g.target.stabilize = 120;
  g.target.max_steps = 20'000;
  g.seed = 4471182868550828066ULL;  // violates under the pure seeded policy
  g.crashes = {kNeverCrashes, kNeverCrashes, kNeverCrashes, 196};
  ExecOptions eo;
  eo.collect_coverage = false;
  ASSERT_EQ(execute_genome(g, eo).violation, "nonuniform")
      << "fixture genome no longer violates; regenerate via nucon_fuzz";

  Genome noisy = g;
  noisy.deliveries.assign(32, kInjectDefer);  // pure noise: defer == absent
  noisy.fd_perturbs.push_back({0, 5000, 3, PerturbKind::kLeader, 1});
  ASSERT_EQ(execute_genome(noisy, eo).violation, "nonuniform");

  MinimizeStats stats;
  const Genome min = minimize_violation(noisy, "nonuniform", &stats);
  EXPECT_EQ(execute_genome(min, eo).violation, "nonuniform");
  EXPECT_TRUE(min.deliveries.empty());
  EXPECT_TRUE(min.fd_perturbs.empty());
  EXPECT_EQ(min.expected, "nonuniform");
  EXPECT_GT(stats.probes, 0u);
}

}  // namespace
}  // namespace nucon::fuzz
