#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace nucon {
namespace {

nucon::Run tiny_run() {
  FailurePattern fp(2);
  fp.set_crash(1, 50);
  nucon::Run run(fp);
  StepRecord a;
  a.p = 0;
  a.t = 1;
  a.d = FdValue::of_leader(0);
  run.steps.push_back(a);
  StepRecord b;
  b.p = 1;
  b.t = 2;
  b.received = MsgId{0, 1};
  b.d = FdValue::of_quorum(ProcessSet{0, 1});
  run.steps.push_back(b);
  return run;
}

TEST(Trace, RendersHeaderAndSteps) {
  const std::string out = render_trace(tiny_run());
  EXPECT_NE(out.find("F{n=2, 1@50}"), std::string::npos);
  EXPECT_NE(out.find("2 steps"), std::string::npos);
  EXPECT_NE(out.find("t=1  p0  recv(lambda)"), std::string::npos);
  EXPECT_NE(out.find("t=2  p1  recv(0#1)"), std::string::npos);
  EXPECT_NE(out.find("leader=0"), std::string::npos);
  EXPECT_NE(out.find("quorum={0,1}"), std::string::npos);
}

TEST(Trace, HidesFdOnRequest) {
  TraceOptions opts;
  opts.show_fd = false;
  const std::string out = render_trace(tiny_run(), opts);
  EXPECT_EQ(out.find("leader="), std::string::npos);
}

TEST(Trace, TruncatesLongRuns) {
  nucon::Run run((FailurePattern(2)));
  for (Time t = 1; t <= 100; ++t) {
    StepRecord s;
    s.p = static_cast<Pid>(t % 2);
    s.t = t;
    run.steps.push_back(s);
  }
  TraceOptions opts;
  opts.max_steps = 10;
  const std::string out = render_trace(run, opts);
  EXPECT_NE(out.find("90 steps elided"), std::string::npos);
  EXPECT_NE(out.find("t=1 "), std::string::npos);
  EXPECT_NE(out.find("t=100"), std::string::npos);
  EXPECT_EQ(out.find("t=50 "), std::string::npos);
}

TEST(Trace, ZeroMaxStepsMeansEverything) {
  nucon::Run run((FailurePattern(2)));
  for (Time t = 1; t <= 30; ++t) {
    StepRecord s;
    s.p = 0;
    s.t = t;
    run.steps.push_back(s);
  }
  TraceOptions opts;
  opts.max_steps = 0;
  const std::string out = render_trace(run, opts);
  EXPECT_EQ(out.find("elided"), std::string::npos);
  EXPECT_NE(out.find("t=17"), std::string::npos);
}

}  // namespace
}  // namespace nucon
