// Integration tests of A_DAG (paper Fig. 1) under the scheduler: the
// finite analogues of Lemmas 4.6-4.8.
#include "dag/dag_builder.hpp"

#include <gtest/gtest.h>

#include "fd/composed.hpp"
#include "fd/omega.hpp"
#include "fd/sigma_nu.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

struct AdagRun {
  explicit AdagRun(FailurePattern fp) : sim(std::move(fp)) {}
  SimResult sim;

  const AdagAutomaton& automaton(Pid p) const {
    return *static_cast<const AdagAutomaton*>(
        sim.automata[static_cast<std::size_t>(p)].get());
  }
};

AdagRun run_adag(const FailurePattern& fp, std::uint64_t seed,
                 std::int64_t steps) {
  SigmaNuOptions so;
  so.stabilize_at = 60;
  so.seed = seed;
  SigmaNuOracle oracle(fp, so);

  SchedulerOptions opts;
  opts.seed = seed;
  opts.max_steps = steps;
  AdagRun result(fp);
  result.sim = simulate(fp, oracle, make_adag(fp.n()), opts);
  return result;
}

TEST(DagBuilder, EveryCorrectProcessAccumulatesEveryonesSamples) {
  FailurePattern fp(4);
  fp.set_crash(3, 40);
  const AdagRun r = run_adag(fp, 1, 1200);

  for (Pid p : fp.correct()) {
    const SampleDag& dag = r.automaton(p).core().dag();
    for (Pid q : fp.correct()) {
      EXPECT_GT(dag.count_of(q), 20u) << "process " << p << " misses " << q;
    }
  }
}

TEST(DagBuilder, FaultySamplesStopGrowing) {
  FailurePattern fp(3);
  fp.set_crash(2, 30);
  const AdagRun r = run_adag(fp, 2, 900);
  const SampleDag& dag = r.automaton(0).core().dag();
  // Process 2 crashed after at most 30 ticks => it took at most 30 samples.
  EXPECT_LE(dag.count_of(2), 30u);
  EXPECT_GT(dag.count_of(0), 100u);
}

TEST(DagBuilder, KCounterMatchesOwnChain) {
  const FailurePattern fp(3);
  const AdagRun r = run_adag(fp, 3, 300);
  for (Pid p = 0; p < 3; ++p) {
    const auto& core = r.automaton(p).core();
    EXPECT_EQ(core.k(), core.dag().count_of(p));
  }
}

TEST(DagBuilder, FreshCoheGreedyChainCoversAllCorrect) {
  // Lemma 4.8's finite analogue: from an early own node, the greedy chain
  // through the cone contains samples of every correct process.
  FailurePattern fp(4);
  fp.set_crash(1, 25);
  const AdagRun r = run_adag(fp, 4, 1600);

  for (Pid p : fp.correct()) {
    const SampleDag& dag = r.automaton(p).core().dag();
    const auto chain = dag.fair_chain(NodeRef{p, 1});
    const ProcessSet participants =
        participants_of(std::span<const NodeRef>(chain));
    EXPECT_TRUE(fp.correct().is_subset_of(participants))
        << "chain of " << p << " covers " << participants.to_string();
  }
}

TEST(DagBuilder, LateConeContainsOnlyCorrectSamples) {
  // Lemma 4.6's finite analogue: a node taken after every faulty process
  // crashed has a cone of only-correct samples.
  FailurePattern fp(4);
  fp.set_crash(2, 20);
  const AdagRun r = run_adag(fp, 5, 1600);

  for (Pid p : fp.correct()) {
    const SampleDag& dag = r.automaton(p).core().dag();
    // A late own sample: three quarters into the run.
    const std::uint32_t k = dag.count_of(p) * 3 / 4 + 1;
    ASSERT_TRUE(dag.contains(NodeRef{p, k}));
    const auto cone = dag.cone_topo(NodeRef{p, k});
    const ProcessSet participants =
        participants_of(std::span<const NodeRef>(cone));
    EXPECT_TRUE(participants.is_subset_of(fp.correct()))
        << participants.to_string();
  }
}

TEST(DagBuilder, GossipCarriesWholeDag) {
  const FailurePattern fp(3);
  const AdagRun r = run_adag(fp, 6, 600);
  const auto& core = r.automaton(0).core();
  const auto decoded = SampleDag::deserialize(core.gossip());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->total_nodes(), core.dag().total_nodes());
  EXPECT_EQ(decoded->total_edges(), core.dag().total_edges());
}

TEST(DagBuilder, MalformedGossipIsIgnored) {
  AdagAutomaton a(0, 3);
  std::vector<Outgoing> out;
  const Bytes junk = {0xde, 0xad};
  const Incoming in{1, &junk};
  a.step(&in, FdValue::of_quorum(ProcessSet{0}), out);
  EXPECT_EQ(a.core().dag().total_nodes(), 1u);  // only the own sample
}

TEST(PathHelpers, ParticipantsAndTrusted) {
  SampleDag dag(4);
  const NodeRef a = dag.take_sample(0, FdValue::of_quorum(ProcessSet{0, 1}));
  const NodeRef b = dag.take_sample(1, FdValue::of_quorum(ProcessSet{1, 2}));
  const std::vector<NodeRef> path = {a, b};
  EXPECT_EQ(participants_of(path), (ProcessSet{0, 1}));
  EXPECT_EQ(trusted_of(dag, path), (ProcessSet{0, 1, 2}));
}

TEST(PathHelpers, TrustedIgnoresNonQuorumValues) {
  SampleDag dag(2);
  const NodeRef a = dag.take_sample(0, FdValue::of_leader(1));
  const std::vector<NodeRef> path = {a};
  EXPECT_EQ(trusted_of(dag, path), ProcessSet{});
  EXPECT_EQ(participants_of(path), ProcessSet{0});
}

}  // namespace
}  // namespace nucon
