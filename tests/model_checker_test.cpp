// Bounded model checking of the consensus automata at n = 2: the naive
// Sigma^nu substitution's agreement violation is FOUND automatically by
// exhaustive schedule exploration, while MR-Sigma and A_nuc survive the
// same exhaustively explored space under the corresponding detector
// histories.
#include "check/model_checker.hpp"

#include <gtest/gtest.h>

#include "algo/mr_consensus.hpp"
#include "core/anuc.hpp"

namespace nucon {
namespace {

/// The n=2 partition history: each process forever trusts only itself —
/// legal for Sigma^nu when the OTHER process is faulty, and exactly the
/// history under which quorum intersection does all the work. (In the
/// explored runs nobody crashes, so any disagreement is a bona fide
/// nonuniform agreement violation.)
FdValue partition_fd(Pid p, int /*own_step*/) {
  FdValue v = FdValue::of_quorum(ProcessSet::single(p));
  v.set_leader(p);
  return v;
}

/// A legal Sigma history for n=2: both processes always output {0, 1}
/// (all quorums intersect), leaders split as in the partition history so
/// the leader mechanism is equally adversarial.
FdValue sigma_fd(Pid p, int /*own_step*/) {
  FdValue v = FdValue::of_quorum(ProcessSet{0, 1});
  v.set_leader(p);
  return v;
}

TEST(ModelChecker, FindsNaiveSigmaNuViolationExhaustively) {
  McOptions opts;
  opts.n = 2;
  opts.make = make_mr_fd_quorum(2);
  opts.proposals = {0, 1};
  opts.fd = partition_fd;
  opts.max_depth = 16;
  opts.max_states = 2'000'000;

  const McResult result = model_check_consensus(opts);
  EXPECT_TRUE(result.violation_found)
      << "explored " << result.states_explored << " states";
  EXPECT_NE(result.violation.find("decided 0 vs 1"), std::string::npos)
      << result.violation;
  // The witness is short: each process can decide alone on its own
  // quorum within a handful of steps.
  EXPECT_LE(result.witness.size(), 16u);
  EXPECT_GE(result.witness.size(), 4u);
}

TEST(ModelChecker, MrSigmaSafeOverTheSameSpace) {
  McOptions opts;
  opts.n = 2;
  opts.make = make_mr_fd_quorum(2);
  opts.proposals = {0, 1};
  opts.fd = sigma_fd;
  opts.max_depth = 14;
  opts.max_states = 4'000'000;

  const McResult result = model_check_consensus(opts);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_TRUE(result.exhausted)
      << "state budget hit after " << result.states_explored;
  EXPECT_GT(result.states_explored, 1000u);
}

TEST(ModelChecker, AnucSurvivesThePartitionHistory) {
  // A_nuc consuming the partition history (a legal Sigma^nu+ history when
  // the other process is faulty — self-inclusive, faulty-only quorums):
  // the distrust machinery must prevent any disagreement in every
  // explored schedule. A_nuc's save_state is a complete encoding so dedup
  // is exact, but the depth-14 space exceeds the state budget here, so
  // this is a broad search rather than a certification; the assertion is
  // that no violation exists in what was explored. (The exhaustive A_nuc
  // certificate lives in model_checker_parallel_test.cpp at n=3.)
  McOptions opts;
  opts.n = 2;
  opts.make = make_anuc(2);
  opts.proposals = {0, 1};
  opts.fd = partition_fd;
  opts.max_depth = 14;
  opts.max_states = 300'000;

  const McResult result = model_check_consensus(opts);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_GT(result.states_explored, 10'000u);
}

TEST(ModelChecker, DedupActuallyPrunes) {
  McOptions opts;
  opts.n = 2;
  opts.make = make_mr_fd_quorum(2);
  opts.proposals = {0, 0};
  opts.fd = sigma_fd;
  opts.max_depth = 10;
  opts.max_states = 2'000'000;

  const McResult result = model_check_consensus(opts);
  EXPECT_GT(result.states_deduped, 0u);
  EXPECT_TRUE(result.exhausted);
}

TEST(ModelChecker, UnanimousProposalsNeverDisagreeAnywhere) {
  // Validity + agreement over the whole space: with both proposing 1 and
  // the partition history, even the naive algorithm can only decide 1.
  McOptions opts;
  opts.n = 2;
  opts.make = make_mr_fd_quorum(2);
  opts.proposals = {1, 1};
  opts.fd = partition_fd;
  opts.max_depth = 14;
  opts.max_states = 2'000'000;

  const McResult result = model_check_consensus(opts);
  EXPECT_FALSE(result.violation_found) << result.violation;
  EXPECT_TRUE(result.exhausted);
}

TEST(ModelChecker, RespectsStateBudget) {
  McOptions opts;
  opts.n = 2;
  opts.make = make_anuc(2);
  opts.proposals = {0, 1};
  opts.fd = sigma_fd;
  opts.max_depth = 30;
  opts.max_states = 500;

  const McResult result = model_check_consensus(opts);
  EXPECT_FALSE(result.exhausted);
  EXPECT_LE(result.states_explored, 501u);
}

}  // namespace
}  // namespace nucon
