// Pins the stabilization boundary convention shared by every generated
// oracle with a `stabilize_at` knob (see the file header of
// fd/failure_detector.hpp): the boundary is INCLUSIVE — at t == stabilize_at
// the module is already stable, t == stabilize_at - 1 is the last tick that
// may be noisy. One table drives the check across all five oracle files
// (omega.cpp, classic.cpp, sigma.cpp, sigma_nu.cpp, sigma_nu_plus.cpp).
//
// Also the regression tests for OmegaOracle's configured-leader validation:
// a faulty or out-of-range eventual leader must throw, in release builds
// too, instead of silently violating Omega.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>

#include "fd/classic.hpp"
#include "fd/omega.hpp"
#include "fd/oracle_base.hpp"
#include "fd/sigma.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

constexpr Time kStabilize = 50;
constexpr std::uint64_t kSeed = 9;

/// n=4, p3 crashes well before stabilization; correct = {0, 1, 2} and the
/// conventional kernel/leader/safe process is 0.
FailurePattern boundary_pattern() {
  FailurePattern fp(4);
  fp.set_crash(3, 10);
  return fp;
}

struct BoundaryCase {
  const char* name;
  /// Samples the oracle at (p, t).
  std::function<FdValue(Pid, Time)> value;
  /// Whether a sample of a *correct* module satisfies the oracle's
  /// post-stabilization guarantee.
  std::function<bool(Pid p, const FdValue& v)> stable_ok;
};

class StabilizationBoundary : public testing::Test {
 protected:
  StabilizationBoundary()
      : fp_(boundary_pattern()),
        omega_(fp_, omega_opts()),
        evt_perfect_(fp_, suspects_opts()),
        strong_(fp_, suspects_opts()),
        evt_strong_(fp_, suspects_opts()),
        sigma_kernel_(fp_, sigma_opts(SigmaStrategy::kKernel)),
        sigma_majority_(fp_, sigma_opts(SigmaStrategy::kMajority)),
        sigma_nu_(fp_, sigma_nu_opts()),
        sigma_nu_plus_(fp_, sigma_nu_plus_opts()) {}

  static OmegaOptions omega_opts() {
    OmegaOptions o;
    o.stabilize_at = kStabilize;
    o.seed = kSeed;
    return o;
  }
  static SuspectsOptions suspects_opts() {
    SuspectsOptions o;
    o.stabilize_at = kStabilize;
    o.seed = kSeed;
    return o;
  }
  static SigmaOptions sigma_opts(SigmaStrategy strategy) {
    SigmaOptions o;
    o.stabilize_at = kStabilize;
    o.seed = kSeed;
    o.strategy = strategy;
    return o;
  }
  static SigmaNuOptions sigma_nu_opts() {
    SigmaNuOptions o;
    o.stabilize_at = kStabilize;
    o.seed = kSeed;
    return o;
  }
  static SigmaNuPlusOptions sigma_nu_plus_opts() {
    SigmaNuPlusOptions o;
    o.stabilize_at = kStabilize;
    o.seed = kSeed;
    return o;
  }

  std::vector<BoundaryCase> table() {
    const ProcessSet correct = fp_.correct();
    const ProcessSet faulty = fp_.faulty();
    const auto subset_of_correct = [correct](const FdValue& v) {
      return (v.quorum() - correct).empty();
    };
    return {
        {"omega",
         [this](Pid p, Time t) { return omega_.value(p, t); },
         [](Pid, const FdValue& v) { return v.leader() == 0; }},
        {"evt_perfect",
         [this](Pid p, Time t) { return evt_perfect_.value(p, t); },
         [faulty](Pid, const FdValue& v) { return v.suspects() == faulty; }},
        {"strong",
         [this](Pid p, Time t) { return strong_.value(p, t); },
         [faulty](Pid, const FdValue& v) {
           return v.suspects() == faulty - ProcessSet::single(0);
         }},
        {"evt_strong",
         [this](Pid p, Time t) { return evt_strong_.value(p, t); },
         [faulty](Pid, const FdValue& v) { return v.suspects() == faulty; }},
        {"sigma_kernel",
         [this](Pid p, Time t) { return sigma_kernel_.value(p, t); },
         [subset_of_correct](Pid, const FdValue& v) {
           return subset_of_correct(v) && v.quorum().contains(0);
         }},
        {"sigma_majority",
         [this](Pid p, Time t) { return sigma_majority_.value(p, t); },
         [subset_of_correct](Pid, const FdValue& v) {
           return subset_of_correct(v) && v.quorum().size() == 3;
         }},
        {"sigma_nu",
         [this](Pid p, Time t) { return sigma_nu_.value(p, t); },
         [subset_of_correct](Pid, const FdValue& v) {
           return subset_of_correct(v) && v.quorum().contains(0);
         }},
        {"sigma_nu_plus",
         [this](Pid p, Time t) { return sigma_nu_plus_.value(p, t); },
         [subset_of_correct](Pid p, const FdValue& v) {
           return subset_of_correct(v) && v.quorum().contains(0) &&
                  v.quorum().contains(p);
         }},
    };
  }

  FailurePattern fp_;
  OmegaOracle omega_;
  EvtPerfectOracle evt_perfect_;
  StrongOracle strong_;
  EvtStrongOracle evt_strong_;
  SigmaOracle sigma_kernel_;
  SigmaOracle sigma_majority_;
  SigmaNuOracle sigma_nu_;
  SigmaNuPlusOracle sigma_nu_plus_;
};

TEST_F(StabilizationBoundary, StableExactlyFromStabilizeAtOn) {
  // t == stabilize_at is already stable — an oracle using `t >` anywhere
  // fails here on the very first tick.
  for (const BoundaryCase& c : table()) {
    for (const Time t : {kStabilize, kStabilize + 1, kStabilize + 9,
                         kStabilize + 500}) {
      for (Pid p : fp_.correct()) {
        const FdValue v = c.value(p, t);
        EXPECT_TRUE(c.stable_ok(p, v))
            << c.name << " not stable at p=" << p << " t=" << t
            << " (boundary must be inclusive)";
      }
    }
  }
}

TEST_F(StabilizationBoundary, NoisyBranchRunsUpToTheBoundary) {
  // The last pre-boundary window is still the noisy branch: some sample in
  // [stabilize_at - 8, stabilize_at - 1] violates the stable guarantee.
  // (8 = one hold window of the quorum oracles, so every oracle redraws.)
  for (const BoundaryCase& c : table()) {
    bool violated = false;
    for (Time t = kStabilize - 8; t < kStabilize && !violated; ++t) {
      for (Pid p : fp_.correct()) {
        violated = violated || !c.stable_ok(p, c.value(p, t));
      }
    }
    EXPECT_TRUE(violated) << c.name
                          << ": pre-boundary samples all satisfied the "
                             "stable guarantee; noisy branch unreachable?";
  }
}

TEST_F(StabilizationBoundary, OmegaTakesTheNoisyBranchAtStabilizeMinusOne) {
  // Sharp version for omega.cpp: at t == stabilize_at - 1 the output is
  // exactly the documented noise function, at t == stabilize_at exactly the
  // eventual leader. This distinguishes `>=` from `>` on both sides.
  for (Pid p = 0; p < fp_.n(); ++p) {
    const Pid noisy = static_cast<Pid>(
        oracle_mix(kSeed, p, kStabilize - 1) %
        static_cast<std::uint64_t>(fp_.n()));
    EXPECT_EQ(omega_.value(p, kStabilize - 1), FdValue::of_leader(noisy));
    EXPECT_EQ(omega_.value(p, kStabilize), FdValue::of_leader(0));
  }
}

// --- OmegaOracle configured-leader validation (regression) ------------------

TEST(OmegaLeaderValidation, FaultyConfiguredLeaderThrows) {
  FailurePattern fp(3);
  fp.set_crash(0, 10);
  OmegaOptions opts;
  opts.leader = 0;  // crashes: not a legal eventual leader
  try {
    OmegaOracle oracle(fp, opts);
    FAIL() << "constructor accepted a faulty eventual leader";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("not a correct process"),
              std::string::npos)
        << e.what();
  }
}

TEST(OmegaLeaderValidation, OutOfRangeConfiguredLeaderThrows) {
  const FailurePattern fp(3);
  OmegaOptions opts;
  opts.leader = 3;  // >= n
  EXPECT_THROW(OmegaOracle(fp, opts), std::invalid_argument);
  opts.leader = 64;
  EXPECT_THROW(OmegaOracle(fp, opts), std::invalid_argument);
}

TEST(OmegaLeaderValidation, CorrectConfiguredLeaderAccepted) {
  FailurePattern fp(3);
  fp.set_crash(0, 10);
  OmegaOptions opts;
  opts.leader = 2;
  OmegaOracle oracle(fp, opts);
  EXPECT_EQ(oracle.eventual_leader(), 2);
  EXPECT_EQ(oracle.value(1, 1000), FdValue::of_leader(2));
}

TEST(OmegaLeaderValidation, DefaultLeaderIsSmallestCorrect) {
  FailurePattern fp(3);
  fp.set_crash(0, 10);
  OmegaOracle oracle(fp, OmegaOptions{});
  EXPECT_EQ(oracle.eventual_leader(), 1);
}

TEST(OmegaLeaderValidation, AllFaultyPatternAcceptsAnyInRangeLeader) {
  // With no correct process Omega imposes nothing; an in-range configured
  // leader is tolerated (there is no correct candidate to demand).
  FailurePattern fp(2);
  fp.set_crash(0, 5);
  fp.set_crash(1, 5);
  OmegaOptions opts;
  opts.leader = 1;
  OmegaOracle oracle(fp, opts);
  EXPECT_EQ(oracle.eventual_leader(), 1);
}

}  // namespace
}  // namespace nucon
