// The Theorem 6.28 construction: nonuniform consensus from raw
// (Omega, Sigma^nu) — the transformation and A_nuc stacked in one
// automaton — must solve nonuniform consensus in any environment, even
// with fully adversarial faulty Sigma^nu modules.
#include "core/stacked_nuc.hpp"

#include <gtest/gtest.h>

#include "consensus_test_util.hpp"
#include "fd/composed.hpp"
#include "fd/sigma_nu.hpp"

namespace nucon {
namespace {

using testutil::SweepParam;

constexpr Time kStabilize = 80;

testutil::OracleStack omega_sigma_nu_raw(const FailurePattern& fp,
                                         std::uint64_t seed) {
  testutil::OracleStack s;
  OmegaOptions oo;
  oo.stabilize_at = kStabilize;
  oo.seed = seed;
  s.first = std::make_unique<OmegaOracle>(fp, oo);
  SigmaNuOptions so;
  so.stabilize_at = kStabilize;
  so.seed = seed + 0x51;
  so.faulty = FaultyQuorumBehavior::kAdversarialDisjoint;
  s.second = std::make_unique<SigmaNuOracle>(fp, so);
  s.composed = std::make_unique<ComposedOracle>(*s.first, *s.second);
  return s;
}

class StackedSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(StackedSweep, SolvesNonuniformConsensusFromRawSigmaNu) {
  const FailurePattern fp = testutil::sweep_pattern(GetParam(), kStabilize - 20);
  auto oracle = omega_sigma_nu_raw(fp, GetParam().seed);

  SchedulerOptions opts;
  opts.seed = GetParam().seed;
  opts.max_steps = 250'000;
  const auto stats =
      run_consensus(fp, oracle.top(), make_stacked_nuc(GetParam().n),
                    testutil::mixed_proposals(GetParam().n), opts);

  EXPECT_TRUE(stats.all_correct_decided) << fp.to_string();
  EXPECT_TRUE(stats.verdict.termination) << stats.verdict.detail;
  EXPECT_TRUE(stats.verdict.validity) << stats.verdict.detail;
  EXPECT_TRUE(stats.verdict.nonuniform_agreement) << stats.verdict.detail;
}

std::vector<SweepParam> stacked_params() {
  std::vector<SweepParam> out;
  for (Pid n : {2, 3, 4, 5}) {
    for (Pid faults = 0; faults < n; ++faults) {
      for (std::uint64_t seed : {1ull, 2ull}) {
        out.push_back({n, faults, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StackedSweep,
                         testing::ValuesIn(stacked_params()),
                         testutil::sweep_name);

TEST(StackedNuc, ToleratesCorrectMinority) {
  FailurePattern fp(4);
  fp.set_crash(1, 30);
  fp.set_crash(2, 45);
  fp.set_crash(3, 60);
  auto oracle = omega_sigma_nu_raw(fp, 7);
  SchedulerOptions opts;
  opts.seed = 7;
  opts.max_steps = 250'000;
  const auto stats = run_consensus(fp, oracle.top(), make_stacked_nuc(4),
                                   testutil::mixed_proposals(4), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_nonuniform()) << stats.verdict.detail;
}

TEST(StackedNuc, TransformationOutputsShrinkFromPi) {
  const FailurePattern fp(3);
  auto oracle = omega_sigma_nu_raw(fp, 9);
  SchedulerOptions opts;
  opts.seed = 9;
  opts.max_steps = 250'000;
  SimResult sim = simulate_consensus(fp, oracle.top(), make_stacked_nuc(3),
                                     {0, 1, 0}, opts);
  for (Pid p = 0; p < 3; ++p) {
    const auto* a = static_cast<const StackedNuc*>(
        sim.automata[static_cast<std::size_t>(p)].get());
    EXPECT_GT(a->transformation().outputs_produced(), 0) << p;
  }
}

TEST(StackedNuc, GarbledChannelByteIsDropped) {
  StackedNuc a(0, 1, 3);
  std::vector<Outgoing> out;
  const Bytes junk = {0x7F, 1, 2, 3};  // unknown channel
  const Incoming in{1, &junk};
  FdValue d = FdValue::of_leader(0);
  d.set_quorum(ProcessSet{0, 1, 2});
  a.step(&in, d, out);  // must not crash; both components saw lambda
  EXPECT_FALSE(a.decision());
}

}  // namespace
}  // namespace nucon
