// fd/qos.hpp: exact metric values on hand-crafted histories, plus sanity
// on histories measured from real heartbeat runs.
#include "fd/qos.hpp"

#include <gtest/gtest.h>

#include "fd/impl/heartbeat.hpp"
#include "fd/scripted.hpp"
#include "sim/scheduler.hpp"

namespace nucon {
namespace {

FailurePattern crash2_at10() {
  FailurePattern fp(3);
  fp.set_crash(2, 10);
  return fp;
}

FdValue sus(std::initializer_list<Pid> pids) {
  return FdValue::of_suspects(ProcessSet(pids));
}

TEST(QosSuspects, ExactDetectionAndMistakeAccounting) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  // p0: one closed mistake episode against correct p1 (t5..t8, length 3),
  // then permanent suspicion of crashed p2 from t20 on.
  h.add(0, 1, sus({}));
  h.add(0, 5, sus({1}));
  h.add(0, 8, sus({}));
  h.add(0, 12, sus({}));
  h.add(0, 20, sus({2}));
  h.add(0, 30, sus({2}));
  // p1 detects p2 at t25.
  h.add(1, 25, sus({2}));
  // A leader-only sample is not a suspect-list sample: skipped entirely.
  h.add(1, 26, FdValue::of_leader(0));
  // The crashed p2's own samples are not those of a correct observer.
  h.add(2, 3, sus({0, 1}));

  const FdQos q = qos_of_suspects(h, fp);
  EXPECT_EQ(q.observed_samples, 7);
  EXPECT_EQ(q.crash_pairs, 2);
  EXPECT_EQ(q.undetected, 0);
  EXPECT_EQ(q.detected(), 2);
  EXPECT_EQ(q.detection_total, 25);  // (20-10) + (25-10)
  EXPECT_EQ(q.detection_max, 15);
  EXPECT_EQ(q.detection_mean(), 12);  // integer floor of 25/2
  EXPECT_EQ(q.mistakes, 1);
  EXPECT_EQ(q.mistake_duration_total, 3);
  EXPECT_EQ(q.mistake_duration_max, 3);
  EXPECT_EQ(q.mistake_duration_mean(), 3);
  EXPECT_EQ(q.mistakes_per_kilosample(), 142);  // 1 * 1000 / 7
}

TEST(QosSuspects, PrematurePermanentSuspicionClampsAtZero) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  // p0 suspects p2 from t5 — before the crash at t10 — and never recants.
  // The detection suffix starts at t5; latency is clamped, not negative.
  h.add(0, 5, sus({2}));
  h.add(0, 20, sus({2}));
  h.add(1, 20, sus({2}));

  const FdQos q = qos_of_suspects(h, fp);
  EXPECT_EQ(q.crash_pairs, 2);
  EXPECT_EQ(q.undetected, 0);
  EXPECT_EQ(q.detection_total, 10);  // 0 (clamped) + (20-10)
  EXPECT_EQ(q.detection_max, 10);
}

TEST(QosSuspects, MissedCrashCountsAsUndetected) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  h.add(0, 20, sus({2}));
  h.add(1, 20, sus({}));  // p1's record ends without suspecting p2

  const FdQos q = qos_of_suspects(h, fp);
  EXPECT_EQ(q.crash_pairs, 2);
  EXPECT_EQ(q.undetected, 1);
  EXPECT_EQ(q.detected(), 1);
  EXPECT_EQ(q.detection_total, 10);
}

TEST(QosSuspects, OpenMistakeEpisodeIsChargedToTheLastSample) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  h.add(0, 5, sus({1}));
  h.add(0, 9, sus({1}));  // still open at the end of the record

  const FdQos q = qos_of_suspects(h, fp);
  EXPECT_EQ(q.mistakes, 1);
  EXPECT_EQ(q.mistake_duration_total, 4);
  EXPECT_EQ(q.mistake_duration_max, 4);
}

TEST(QosLeader, StabilizationIsOneAfterTheLastViolation) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(2));  // the one violating sample
  h.add(0, 4, FdValue::of_leader(0));
  h.add(0, 9, FdValue::of_leader(0));
  h.add(1, 2, FdValue::of_leader(0));
  h.add(1, 8, FdValue::of_leader(0));
  h.add(2, 3, FdValue::of_leader(1));  // crashed: never counted

  const FdQos q = qos_of_leader(h, fp);
  EXPECT_TRUE(q.omega_stabilized);
  EXPECT_EQ(q.omega_stabilization, 2);
}

TEST(QosLeader, AgreementFromTheStartStabilizesAtZero) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  h.add(0, 1, FdValue::of_leader(0));
  h.add(1, 2, FdValue::of_leader(0));
  const FdQos q = qos_of_leader(h, fp);
  EXPECT_TRUE(q.omega_stabilized);
  EXPECT_EQ(q.omega_stabilization, 0);
}

TEST(QosLeader, SplitFinalLeadersDoNotStabilize) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  h.add(0, 9, FdValue::of_leader(0));
  h.add(1, 9, FdValue::of_leader(1));
  const FdQos q = qos_of_leader(h, fp);
  EXPECT_FALSE(q.omega_stabilized);
  EXPECT_EQ(q.omega_stabilization, -1);
}

TEST(QosLeader, CorrectProcessWithoutLeaderSamplesDoesNotStabilize) {
  const FailurePattern fp = crash2_at10();
  RecordedHistory h;
  h.add(0, 9, FdValue::of_leader(0));
  h.add(1, 9, sus({}));  // p1 never output a leader component
  EXPECT_FALSE(qos_of_leader(h, fp).omega_stabilized);
}

TEST(QosLeader, EmptyCorrectSetIsVacuouslyStable) {
  FailurePattern fp(2);
  fp.set_crash(0, 5);
  fp.set_crash(1, 5);
  const FdQos q = qos_of_leader(RecordedHistory{}, fp);
  EXPECT_TRUE(q.omega_stabilized);
  EXPECT_EQ(q.omega_stabilization, 0);
}

// --- Measured QoS sanity ----------------------------------------------------

RecordedHistory measure(HeartbeatMode mode, const FailurePattern& fp) {
  RecordedHistory h;
  SchedulerOptions opts;
  opts.seed = 7;
  opts.max_steps = 8000;
  opts.record_run = false;
  opts.timing.enabled = true;
  opts.on_step = [&h](const StepRecord& rec,
                      const std::vector<std::unique_ptr<Automaton>>& automata) {
    const auto* hb = static_cast<const HeartbeatFd*>(
        automata[static_cast<std::size_t>(rec.p)].get());
    h.add(rec.p, rec.t, hb->output());
  };
  ScriptedOracle oracle([](Pid, Time) { return FdValue{}; });
  (void)simulate(fp, oracle, make_heartbeat_fd(fp.n(), mode), opts);
  return h;
}

TEST(QosMeasured, HeartbeatDiamondSDetectsEveryCrash) {
  FailurePattern fp(4);
  fp.set_crash(3, 200);
  const FdQos q =
      qos_of_suspects(measure(HeartbeatMode::kDiamondS, fp), fp);
  EXPECT_EQ(q.crash_pairs, 3);  // three correct observers, one crash
  EXPECT_EQ(q.undetected, 0);
  EXPECT_GT(q.detection_max, 0);
  EXPECT_GT(q.observed_samples, 0);
}

TEST(QosMeasured, HeartbeatOmegaStabilizesAfterTheLeaderCrashes) {
  FailurePattern fp(4);
  fp.set_crash(0, 200);  // the initial heartbeat-chain leader crashes
  const FdQos q = qos_of_leader(measure(HeartbeatMode::kOmega, fp), fp);
  EXPECT_TRUE(q.omega_stabilized);
  // Stabilizing on the post-crash leader takes at least until the crash.
  EXPECT_GT(q.omega_stabilization, 200);
}

}  // namespace
}  // namespace nucon
