// Scale checks at the top of the supported range: the bitmask ProcessSet
// representation promises n up to 64; the core algorithms must actually
// work there, not just at the n <= 9 sizes the experiment sweeps use.
#include <gtest/gtest.h>

#include "algo/mr_consensus.hpp"
#include "consensus_test_util.hpp"
#include "core/omega_election.hpp"
#include "fd/history.hpp"
#include "fd/scripted.hpp"

namespace nucon {
namespace {

TEST(Scale, MrSigmaAtSixteenProcesses) {
  FailurePattern fp(16);
  for (Pid p = 12; p < 16; ++p) fp.set_crash(p, 40 + p);
  auto oracle = testutil::omega_sigma(fp, 100, 1);
  SchedulerOptions opts;
  opts.seed = 1;
  opts.max_steps = 300'000;
  const auto stats = run_consensus(fp, oracle.top(), make_mr_fd_quorum(16),
                                   testutil::mixed_proposals(16), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

TEST(Scale, MrSigmaAtFortyEightProcessesCorrectMinority) {
  // 30 of 48 crash: quorum detectors keep working where majorities die.
  FailurePattern fp(48);
  for (Pid p = 18; p < 48; ++p) fp.set_crash(p, 30 + p);
  auto oracle = testutil::omega_sigma(fp, 150, 2);
  SchedulerOptions opts;
  opts.seed = 2;
  opts.max_steps = 600'000;
  const auto stats = run_consensus(fp, oracle.top(), make_mr_fd_quorum(48),
                                   testutil::mixed_proposals(48), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

TEST(Scale, MrMajorityAtSixtyFourProcesses) {
  // The full supported width.
  FailurePattern fp(64);
  for (Pid p = 50; p < 64; ++p) fp.set_crash(p, 60);
  auto oracle = testutil::omega_only(fp, 150, 3);
  SchedulerOptions opts;
  opts.seed = 3;
  opts.max_steps = 600'000;
  const auto stats = run_consensus(fp, oracle.top(), make_mr_majority(64),
                                   testutil::mixed_proposals(64), opts);
  EXPECT_TRUE(stats.all_correct_decided);
  EXPECT_TRUE(stats.verdict.solves_uniform()) << stats.verdict.detail;
}

TEST(Scale, OmegaElectionAtThirtyTwoProcesses) {
  FailurePattern fp(32);
  for (Pid p = 0; p < 8; ++p) fp.set_crash(p, 100 + 5 * p);

  ScriptedOracle no_fd([](Pid, Time) { return FdValue{}; });
  RecordedHistory emulated;
  SchedulerOptions opts;
  opts.seed = 4;
  opts.max_steps = 200'000;
  opts = with_emulation_recording(std::move(opts), emulated);
  (void)simulate(fp, no_fd, make_omega_election(32), opts);

  const auto result = check_omega(emulated, fp);
  EXPECT_TRUE(result.ok) << result.detail;
  EXPECT_EQ(emulated.samples().back().value.leader(), 8);
}

}  // namespace
}  // namespace nucon
